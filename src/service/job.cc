#include "service/job.h"

#include <cctype>
#include <cmath>
#include <set>

#include "support/diagnostics.h"

namespace heterogen::service {

const char *
priorityName(Priority p)
{
    switch (p) {
      case Priority::Low:
        return "low";
      case Priority::Normal:
        return "normal";
      case Priority::High:
        return "high";
    }
    return "?";
}

std::optional<Priority>
parsePriority(const std::string &name)
{
    std::string lower;
    lower.reserve(name.size());
    for (char c : name)
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    if (lower == "low")
        return Priority::Low;
    if (lower == "normal")
        return Priority::Normal;
    if (lower == "high")
        return Priority::High;
    return std::nullopt;
}

Priority
priorityFromName(const std::string &name)
{
    std::optional<Priority> p = parsePriority(name);
    if (!p)
        fatal("service: unknown priority '", name,
              "' (expected low, normal or high)");
    return *p;
}

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Pending:
        return "pending";
      case JobState::Running:
        return "running";
      case JobState::Completed:
        return "completed";
      case JobState::Cancelled:
        return "cancelled";
      case JobState::Failed:
        return "failed";
    }
    return "?";
}

void
validateServiceOptions(const ServiceOptions &options)
{
    if (options.slots < 1)
        fatal("service: slots must be >= 1, got ", options.slots);
    if (options.host_threads < 0)
        fatal("service: host_threads must be >= 0, got ",
              options.host_threads);
    if (options.eval_threads < 1)
        fatal("service: eval_threads must be >= 1, got ",
              options.eval_threads);
    std::set<std::string> seen;
    for (const TenantSpec &t : options.tenants) {
        if (t.id.empty())
            fatal("service: tenant with empty id");
        if (!seen.insert(t.id).second)
            fatal("service: duplicate tenant '", t.id, "'");
        if (std::isnan(t.quota_minutes) || t.quota_minutes <= 0)
            fatal("service: tenant '", t.id,
                  "' quota_minutes must be positive, got ",
                  t.quota_minutes);
        if (std::isnan(t.weight) || t.weight <= 0)
            fatal("service: tenant '", t.id,
                  "' weight must be positive, got ", t.weight);
    }
}

void
validateJobSpec(const JobSpec &spec)
{
    if (spec.tenant.empty())
        fatal("service: job has no tenant");
    if (spec.source.empty())
        fatal("service: job for tenant '", spec.tenant,
              "' has empty source");
    if (std::isnan(spec.arrival_minutes) || spec.arrival_minutes < 0)
        fatal("service: job for tenant '", spec.tenant,
              "' has negative arrival_minutes ", spec.arrival_minutes);
    if (spec.cancel_at_minutes >= 0 &&
        spec.cancel_at_minutes < spec.arrival_minutes) {
        fatal("service: job for tenant '", spec.tenant,
              "' is scheduled to cancel at ", spec.cancel_at_minutes,
              " before it arrives at ", spec.arrival_minutes);
    }
    if (!repair::parseProposerName(spec.proposer))
        fatal("service: job for tenant '", spec.tenant,
              "' names unknown proposer '", spec.proposer,
              "' (expected template, corpus or mixed)");
    if (!spec.cache_dir.empty()) {
        std::string err = repair::cacheDirError(spec.cache_dir);
        if (!err.empty())
            fatal("service: job for tenant '", spec.tenant, "': ", err);
    }
    core::validateOptions(spec.options);
}

} // namespace heterogen::service
