/**
 * @file
 * ConversionService: a multi-tenant scheduler running many conversion
 * jobs — each one HeteroGen::run on the RunContext spine — over a
 * shared worker pool, entirely on the simulated clock.
 *
 * The scheduler is a discrete-event loop in simulated minutes: at each
 * event time it admits arrivals, applies scheduled cancellations,
 * dispatches ready jobs onto virtual slots by priority and weighted
 * fair share (preempting strictly lower-priority runs when enabled),
 * and advances time to the next completion or arrival. Host threads
 * only *execute* dispatched runs; every scheduling decision is made
 * serially on simulated time, so the same submission set yields
 * bit-identical per-job reports, schedules and traces at any host
 * thread count (docs/SERVICE.md spells out the contract).
 *
 * Quotas ride the spine's hierarchical budgets: a dispatched run's
 * root budget is the tenant's remaining allowance (and any scheduled
 * cancel), so one shouldStop() check inside the pipeline enforces
 * tenant limits with no new stop machinery.
 */

#ifndef HETEROGEN_SERVICE_SERVICE_H
#define HETEROGEN_SERVICE_SERVICE_H

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/job.h"
#include "support/worker_pool.h"

namespace heterogen::service {

/** The job scheduler. See file comment for the model. */
class ConversionService
{
  public:
    /** @throws FatalError on invalid options (validateServiceOptions). */
    explicit ConversionService(ServiceOptions options = {});
    ~ConversionService();

    ConversionService(const ConversionService &) = delete;
    ConversionService &operator=(const ConversionService &) = delete;

    /**
     * Accept one job; returns its id (dense, starting at 0).
     * Thread-safe against poll/cancel but not against drain(): submit
     * while draining is a FatalError (the schedule being replayed is
     * fixed at drain time).
     * @throws FatalError on a malformed spec (validateJobSpec) or an
     *         unknown tenant when auto-registration is off.
     */
    int submit(JobSpec spec);

    /**
     * Current view of one job. Safe to call from any thread, including
     * while drain() runs (live progress: state, stage, preemptions).
     */
    JobStatus poll(int id) const;

    /**
     * Request cancellation of one job from outside the schedule. A
     * pending job is cancelled at the next event; a running job stops
     * at its next shouldStop() check. Unlike cancel_at_minutes this is
     * keyed to *host* time, so it is the one deliberately
     * nondeterministic entry point — replayable schedules should use
     * JobSpec::cancel_at_minutes instead. No-op on terminal jobs.
     */
    void cancel(int id);

    /**
     * Run the discrete-event loop until every submitted job is
     * terminal. Serially callable again after more submits; reentrant
     * calls are a FatalError.
     */
    void drain();

    /**
     * Terminal outcome of one job.
     * @throws FatalError if the job is unknown or not yet terminal.
     */
    const JobOutcome &collect(int id) const;

    /** Simulated minutes on the service clock. */
    double simNow() const;

    /** Scheduler-wide and per-tenant accounting so far. */
    SchedulerStats stats() const;

    const ServiceOptions &options() const { return options_; }

  private:
    struct Job;

    // All *Locked helpers require mu_ held.
    Job *findLocked(int id);
    const Job *findLocked(int id) const;
    const TenantSpec &tenantSpecLocked(const std::string &id) const;
    double consumedLocked(const std::string &tenant) const;
    double reservedLocked(const std::string &tenant) const;
    /** Admission estimate of a run's simulated cost (reservation). */
    double estimateMinutesLocked(const Job &job) const;
    void finishLocked(Job &job, JobState state, std::string stop_reason);
    void applyDueCancelsLocked();
    std::vector<Job *> readyLocked();
    bool dispatchOneLocked();
    void dispatchLocked();
    void preemptLocked(Job &victim);
    void startRunLocked(Job &job);
    /**
     * The shared verdict store for a cache directory, opened on first
     * use (a deterministic event-loop point: stores load their on-disk
     * snapshot at open, and every job answers lookups from that
     * snapshot alone, so concurrent jobs' cache outcomes are
     * independent of host-thread interleaving). Keyed by the exact
     * directory string a job named.
     */
    repair::VerdictStore *storeForLocked(const std::string &dir);
    /** Execute pending host runs; drops the lock while waiting. */
    void executeRunning(std::unique_lock<std::mutex> &lock);
    void completeDueLocked();
    double nextEventTimeLocked() const;

    ServiceOptions options_;
    std::map<std::string, TenantSpec> tenants_;

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Job>> jobs_;
    double sim_now_ = 0;
    bool draining_ = false;
    int running_ = 0;
    int preemptions_ = 0;
    int max_in_flight_ = 0;
    /** Minutes consumed per tenant (completed + preempted waste). */
    std::map<std::string, double> consumed_;

    /** One shared verdict store per distinct cache directory; buffered
     * writes are published once, at the end of drain(). */
    std::map<std::string, std::unique_ptr<repair::VerdictStore>> stores_;

    /** Executes dispatched runs; capacity >= slots so the event loop
     * never blocks on submission while holding mu_. */
    std::unique_ptr<WorkerPool> host_pool_;
    /** Shared by every job's leaf parallelism (fuzz, difftest). */
    std::unique_ptr<WorkerPool> eval_pool_;
};

} // namespace heterogen::service

#endif // HETEROGEN_SERVICE_SERVICE_H
