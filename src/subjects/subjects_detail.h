/** @file Internal: per-subject factory functions. */

#ifndef HETEROGEN_SUBJECTS_SUBJECTS_DETAIL_H
#define HETEROGEN_SUBJECTS_SUBJECTS_DETAIL_H

#include "subjects/subjects.h"

namespace heterogen::subjects::detail {

Subject makeP1();
Subject makeP2();
Subject makeP3();
Subject makeP4();
Subject makeP5();
Subject makeP6();
Subject makeP7();
Subject makeP8();
Subject makeP9();
Subject makeP10();

Subject makeS1();
Subject makeS2();
Subject makeS3();
Subject makeS4();

} // namespace heterogen::subjects::detail

#endif // HETEROGEN_SUBJECTS_SUBJECTS_DETAIL_H
