/** @file Streaming subjects S1-S4: producer/consumer chain, tiled
 * GEMM, 2D stencil blur, and an FFT-like butterfly network. Each one
 * carries a DATAFLOW region whose fifo topology hangs in hardware
 * while simulating cleanly in software (AutoSA's "Issue 3"), plus the
 * expert port the rewrite corpus mines. */

#include "subjects/subjects_detail.h"

namespace heterogen::subjects {

using interp::KernelArg;

namespace detail {

Subject
makeS1()
{
    Subject s;
    s.id = "S1";
    s.name = "producer consumer chain";
    s.kernel = "chain_kernel";
    s.host = "host";
    s.fuzz_seed = 201;
    // Three-stage chain: the load stage already streams into the scale
    // stage, but scale hands its output to the fold stage through a
    // plain scratch array. Both stages touch the array inside one
    // dataflow region, so the schedule is unserialized: co-simulation
    // passes, hardware hangs.
    s.source = R"(
void stage_load(int src[64], hls::stream<int> &mid) {
    for (int i = 0; i < 64; i++) {
        mid.write(src[i] * 3 + 1);
    }
}
void stage_scale(hls::stream<int> &mid, int buf[64]) {
    for (int i = 0; i < 64; i++) {
        int v = mid.read();
        buf[i] = v * 2 - 5;
    }
}
void stage_fold(int buf[64], int out[8]) {
    int acc = 0;
    for (int i = 0; i < 64; i++) {
        acc = acc + buf[i];
        if (i % 8 == 7) {
            out[i / 8] = acc;
            acc = 0;
        }
    }
}
void chain_kernel(int src[64], int out[8]) {
    #pragma HLS dataflow
    hls::stream<int> mid;
    int buf[64];
    stage_load(src, mid);
    stage_scale(mid, buf);
    stage_fold(buf, out);
}
int host() {
    int src[64];
    int out[8];
    for (int i = 0; i < 64; i++) {
        src[i] = (i * 7 + 3) % 50 - 11;
    }
    for (int i = 0; i < 8; i++) {
        out[i] = 0;
    }
    chain_kernel(src, out);
    return out[0] + out[7];
}
)";
    // The expert port streams the scratch array: every hop of the
    // chain is a fifo, so the processes overlap and nothing hangs.
    s.manual_source = R"(
void stage_load(int src[64], hls::stream<int> &mid) {
    for (int i = 0; i < 64; i++) {
        mid.write(src[i] * 3 + 1);
    }
}
void stage_scale(hls::stream<int> &mid, hls::stream<int> &buf) {
    for (int i = 0; i < 64; i++) {
        int v = mid.read();
        buf.write(v * 2 - 5);
    }
}
void stage_fold(hls::stream<int> &buf, int out[8]) {
    int acc = 0;
    for (int i = 0; i < 64; i++) {
        int b = buf.read();
        acc = acc + b;
        if (i % 8 == 7) {
            out[i / 8] = acc;
            acc = 0;
        }
    }
}
void chain_kernel(int src[64], int out[8]) {
    #pragma HLS dataflow
    hls::stream<int> mid;
    hls::stream<int> buf;
    stage_load(src, mid);
    stage_scale(mid, buf);
    stage_fold(buf, out);
}
)";
    {
        std::vector<long> src(64, 2);
        s.existing_tests.push_back(
            {KernelArg::ofInts(src),
             KernelArg::ofInts({0, 0, 0, 0, 0, 0, 0, 0})});
    }
    return s;
}

Subject
makeS2()
{
    Subject s;
    s.id = "S2";
    s.name = "tiled gemm";
    s.kernel = "gemm_kernel";
    s.host = "host";
    s.fuzz_seed = 202;
    // 8x8 matrix multiply: a feeder streams the B operand tile by
    // tile, the MAC stage accumulates into a shared result buffer that
    // the drain stage then clamps out — the buffer is the unserialized
    // producer/consumer pair.
    s.source = R"(
void feed_b(int b[64], hls::stream<int> &bs) {
    for (int t = 0; t < 64; t++) {
        bs.write(b[t]);
    }
}
void mac_tile(int a[64], hls::stream<int> &bs, int cbuf[64]) {
    int bloc[64];
    for (int t = 0; t < 64; t++) {
        bloc[t] = bs.read();
    }
    for (int row = 0; row < 8; row++) {
        for (int col = 0; col < 8; col++) {
            int acc = 0;
            for (int k = 0; k < 8; k++) {
                acc = acc + a[row * 8 + k] * bloc[k * 8 + col];
            }
            cbuf[row * 8 + col] = acc;
        }
    }
}
void drain_c(int cbuf[64], int c[64]) {
    for (int i = 0; i < 64; i++) {
        int v = cbuf[i];
        if (v < 0) {
            v = 0;
        }
        c[i] = v;
    }
}
void gemm_kernel(int a[64], int b[64], int c[64]) {
    #pragma HLS dataflow
    hls::stream<int> bs;
    int cbuf[64];
    feed_b(b, bs);
    mac_tile(a, bs, cbuf);
    drain_c(cbuf, c);
}
int host() {
    int a[64];
    int b[64];
    int c[64];
    for (int i = 0; i < 64; i++) {
        a[i] = (i * 5) % 13 - 6;
        b[i] = (i * 11 + 2) % 17 - 8;
        c[i] = 0;
    }
    gemm_kernel(a, b, c);
    return c[0] + c[63];
}
)";
    // Expert port: the result buffer becomes a fifo written in drain
    // order, so the MAC and drain stages pipeline back to back.
    s.manual_source = R"(
void feed_b(int b[64], hls::stream<int> &bs) {
    for (int t = 0; t < 64; t++) {
        bs.write(b[t]);
    }
}
void mac_tile(int a[64], hls::stream<int> &bs, hls::stream<int> &cbuf) {
    int bloc[64];
    for (int t = 0; t < 64; t++) {
        bloc[t] = bs.read();
    }
    for (int row = 0; row < 8; row++) {
        for (int col = 0; col < 8; col++) {
            int acc = 0;
            for (int k = 0; k < 8; k++) {
                acc = acc + a[row * 8 + k] * bloc[k * 8 + col];
            }
            cbuf.write(acc);
        }
    }
}
void drain_c(hls::stream<int> &cbuf, int c[64]) {
    for (int i = 0; i < 64; i++) {
        int v = cbuf.read();
        if (v < 0) {
            v = 0;
        }
        c[i] = v;
    }
}
void gemm_kernel(int a[64], int b[64], int c[64]) {
    #pragma HLS dataflow
    hls::stream<int> bs;
    hls::stream<int> cbuf;
    feed_b(b, bs);
    mac_tile(a, bs, cbuf);
    drain_c(cbuf, c);
}
)";
    {
        std::vector<long> a(64, 1);
        std::vector<long> b(64, 3);
        std::vector<long> c(64, 0);
        s.existing_tests.push_back({KernelArg::ofInts(a),
                                    KernelArg::ofInts(b),
                                    KernelArg::ofInts(c)});
    }
    return s;
}

Subject
makeS3()
{
    Subject s;
    s.id = "S3";
    s.name = "2d stencil blur";
    s.kernel = "stencil_kernel";
    s.host = "host";
    s.fuzz_seed = 203;
    // Vertical blur over a 5x16 frame: two row producers feed one join
    // consumer. The north channel must buffer its full 64 tokens while
    // the south producer catches up (producer skew), but both fifos
    // sit at the configured default depth.
    s.source = R"(
void north_rows(int img[80], hls::stream<int> &ns) {
    for (int i = 0; i < 64; i++) {
        ns.write(img[i]);
    }
}
void south_rows(int img[80], hls::stream<int> &ss) {
    for (int i = 0; i < 64; i++) {
        ss.write(img[i + 16]);
    }
}
void blend(hls::stream<int> &ns, hls::stream<int> &ss, int out[64]) {
    for (int i = 0; i < 64; i++) {
        int n = ns.read();
        int sv = ss.read();
        out[i] = (n + sv) / 2;
    }
}
void stencil_kernel(int img[80], int out[64]) {
    #pragma HLS dataflow
    hls::stream<int> ns;
    hls::stream<int> ss;
    north_rows(img, ns);
    south_rows(img, ss);
    blend(ns, ss, out);
}
int host() {
    int img[80];
    int out[64];
    for (int i = 0; i < 80; i++) {
        img[i] = (i * 9 + 5) % 256;
    }
    for (int i = 0; i < 64; i++) {
        out[i] = 0;
    }
    stencil_kernel(img, out);
    return out[0] + out[63];
}
)";
    // Expert port: size the skewed channel for its full token count so
    // the join never backpressures its first producer.
    s.manual_source = R"(
void north_rows(int img[80], hls::stream<int> &ns) {
    for (int i = 0; i < 64; i++) {
        ns.write(img[i]);
    }
}
void south_rows(int img[80], hls::stream<int> &ss) {
    for (int i = 0; i < 64; i++) {
        ss.write(img[i + 16]);
    }
}
void blend(hls::stream<int> &ns, hls::stream<int> &ss, int out[64]) {
    for (int i = 0; i < 64; i++) {
        int n = ns.read();
        int sv = ss.read();
        out[i] = (n + sv) / 2;
    }
}
void stencil_kernel(int img[80], int out[64]) {
    #pragma HLS dataflow
    hls::stream<int> ns;
    #pragma HLS stream variable=ns depth=64
    hls::stream<int> ss;
    north_rows(img, ns);
    south_rows(img, ss);
    blend(ns, ss, out);
}
)";
    {
        std::vector<long> img(80, 100);
        std::vector<long> out(64, 0);
        s.existing_tests.push_back(
            {KernelArg::ofInts(img), KernelArg::ofInts(out)});
    }
    return s;
}

Subject
makeS4()
{
    Subject s;
    s.id = "S4";
    s.name = "butterfly network";
    s.kernel = "fft_kernel";
    s.host = "host";
    s.fuzz_seed = 204;
    // FFT-like two-process network: the butterfly stage emits 16
    // stages x 128 points, and the untwiddle stage folds each point
    // against eight coefficient taps. The tap array is unpartitioned,
    // so the consumer's initiation interval inflates 4x and the fifo
    // backlog outgrows even the maximum legal depth — only bank
    // partitioning can close the gap.
    s.source = R"(
void butterfly(int a[128], int b[128], hls::stream<int> &xs) {
    for (int s = 0; s < 16; s++) {
        for (int i = 0; i < 128; i++) {
            int u = a[i];
            int v = b[i];
            xs.write(u + v * (s + 1));
        }
    }
}
void untwiddle(hls::stream<int> &xs, int tw[16], int out[16]) {
    #pragma HLS array_partition variable=tw factor=1 type=cyclic
    for (int s = 0; s < 16; s++) {
        for (int i = 0; i < 128; i++) {
            int x = xs.read();
            int w0 = tw[i % 16];
            int w1 = tw[(i + 1) % 16];
            int w2 = tw[(i + 2) % 16];
            int w3 = tw[(i + 4) % 16];
            int w4 = tw[(i + 5) % 16];
            int w5 = tw[(i + 8) % 16];
            int w6 = tw[(i + 9) % 16];
            int w7 = tw[(i + 12) % 16];
            int y = x * w0 + w1 - w2 + w3 * 2 - w4 + w5 - w6 + w7;
            out[s] = out[s] + y;
        }
    }
}
void fft_kernel(int a[128], int b[128], int tw[16], int out[16]) {
    #pragma HLS dataflow
    hls::stream<int> xs;
    butterfly(a, b, xs);
    untwiddle(xs, tw, out);
}
int host() {
    int a[128];
    int b[128];
    int tw[16];
    int out[16];
    for (int i = 0; i < 128; i++) {
        a[i] = (i * 3 + 1) % 21 - 10;
        b[i] = (i * 7 + 4) % 15 - 7;
    }
    for (int i = 0; i < 16; i++) {
        tw[i] = (i * 5 + 2) % 9 - 4;
        out[i] = 0;
    }
    fft_kernel(a, b, tw, out);
    return out[0] + out[15];
}
)";
    // Expert port: cap the fifo at the toolchain maximum and partition
    // the tap array four ways so the consumer drains at full rate.
    s.manual_source = R"(
void butterfly(int a[128], int b[128], hls::stream<int> &xs) {
    for (int s = 0; s < 16; s++) {
        for (int i = 0; i < 128; i++) {
            int u = a[i];
            int v = b[i];
            xs.write(u + v * (s + 1));
        }
    }
}
void untwiddle(hls::stream<int> &xs, int tw[16], int out[16]) {
    #pragma HLS array_partition variable=tw factor=4 type=cyclic
    for (int s = 0; s < 16; s++) {
        for (int i = 0; i < 128; i++) {
            int x = xs.read();
            int w0 = tw[i % 16];
            int w1 = tw[(i + 1) % 16];
            int w2 = tw[(i + 2) % 16];
            int w3 = tw[(i + 4) % 16];
            int w4 = tw[(i + 5) % 16];
            int w5 = tw[(i + 8) % 16];
            int w6 = tw[(i + 9) % 16];
            int w7 = tw[(i + 12) % 16];
            int y = x * w0 + w1 - w2 + w3 * 2 - w4 + w5 - w6 + w7;
            out[s] = out[s] + y;
        }
    }
}
void fft_kernel(int a[128], int b[128], int tw[16], int out[16]) {
    #pragma HLS dataflow
    hls::stream<int> xs;
    #pragma HLS stream variable=xs depth=1024
    butterfly(a, b, xs);
    untwiddle(xs, tw, out);
}
)";
    {
        std::vector<long> a(128, 1);
        std::vector<long> b(128, 2);
        std::vector<long> tw(16, 1);
        std::vector<long> out(16, 0);
        s.existing_tests.push_back(
            {KernelArg::ofInts(a), KernelArg::ofInts(b),
             KernelArg::ofInts(tw), KernelArg::ofInts(out)});
    }
    return s;
}

} // namespace detail

} // namespace heterogen::subjects
