/** @file Subjects P6-P10: matrix multiplication, bubble sort, linked
 * list, face detection, digit recognition. */

#include "subjects/subjects_detail.h"

namespace heterogen::subjects {

using interp::KernelArg;

namespace detail {

Subject
makeP6()
{
    Subject s;
    s.id = "P6";
    s.name = "matrix multiplication";
    s.kernel = "kernel";
    s.host = "host";
    s.fuzz_seed = 106;
    // Classic 4x4 matmul whose long double accumulator is not
    // synthesizable (unsupported data type).
    s.source = R"(
void kernel(int a[16], int b[16], int c[16]) {
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 4; j++) {
            long double acc = 0.0L;
            for (int k = 0; k < 4; k++) {
                acc = acc + a[i * 4 + k] * b[k * 4 + j];
            }
            c[i * 4 + j] = acc;
        }
    }
}
int host() {
    int a[16];
    int b[16];
    int c[16];
    for (int i = 0; i < 16; i++) {
        a[i] = i - 8;
        b[i] = (i * 3) % 7;
        c[i] = 0;
    }
    kernel(a, b, c);
    return c[5];
}
)";
    s.manual_source = R"(
void kernel(int a[16], int b[16], int c[16]) {
    #pragma HLS array_partition variable=a factor=4
    #pragma HLS array_partition variable=b factor=4
    for (int i = 0; i < 4; i++) {
        #pragma HLS pipeline II=1
        for (int j = 0; j < 4; j++) {
            #pragma HLS pipeline II=1
            fpga_float<8,52> acc = 0.0;
            for (int k = 0; k < 4; k++) {
                #pragma HLS unroll factor=4
                acc = acc + (fpga_float<8,52>)(a[i * 4 + k] * b[k * 4 + j]);
            }
            c[i * 4 + j] = acc;
        }
    }
}
)";
    for (int t = 0; t < 4; ++t) {
        std::vector<long> a(16, t), b(16, 1), c(16, 0);
        s.existing_tests.push_back({KernelArg::ofInts(a),
                                    KernelArg::ofInts(b),
                                    KernelArg::ofInts(c)});
    }
    return s;
}

Subject
makeP7()
{
    Subject s;
    s.id = "P7";
    s.name = "bubble sort";
    s.kernel = "kernel";
    s.host = "host";
    s.fuzz_seed = 107;
    s.source = R"(
int pass_count = 0;
void kernel(int a[], int n, int stats[]) {
    if (n < 0) { n = 0; }
    if (n > 32) { n = 32; }
    pass_count = 0;
    int swapped = 1;
    while (swapped == 1) {
        swapped = 0;
        pass_count = pass_count + 1;
        for (int j = 0; j + 1 < n; j++) {
            if (a[j] > a[j + 1]) {
                int t = a[j];
                a[j] = a[j + 1];
                a[j + 1] = t;
                swapped = 1;
            }
        }
        if (pass_count > n + 1) {
            swapped = 0;
        }
    }
    int lo = a[0];
    int hi = a[0];
    int acc = 0;
    for (int i = 0; i < n; i++) {
        if (a[i] < lo) { lo = a[i]; }
        if (a[i] > hi) { hi = a[i]; }
        acc = acc + a[i];
    }
    stats[0] = lo;
    stats[1] = hi;
    stats[2] = acc;
    stats[3] = pass_count;
}
int host() {
    int data[32];
    int stats[4];
    for (int i = 0; i < 32; i++) {
        data[i] = (97 - i * 13) % 41;
        if (i < 4) { stats[i] = 0; }
    }
    kernel(data, 32, stats);
    return stats[2];
}
)";
    s.manual_source = R"(
int pass_count = 0;
void kernel(int a[32], int n, int stats[4]) {
    if (n < 0) { n = 0; }
    if (n > 32) { n = 32; }
    pass_count = 0;
    int swapped = 1;
    while (swapped == 1) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=33
        swapped = 0;
        pass_count = pass_count + 1;
        for (int j = 0; j + 1 < n; j++) {
            #pragma HLS pipeline II=1
            #pragma HLS loop_tripcount max=31
            if (a[j] > a[j + 1]) {
                int t = a[j];
                a[j] = a[j + 1];
                a[j + 1] = t;
                swapped = 1;
            }
        }
        if (pass_count > n + 1) {
            swapped = 0;
        }
    }
    int lo = a[0];
    int hi = a[0];
    int acc = 0;
    for (int i = 0; i < n; i++) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=32
        if (a[i] < lo) { lo = a[i]; }
        if (a[i] > hi) { hi = a[i]; }
        acc = acc + a[i];
    }
    stats[0] = lo;
    stats[1] = hi;
    stats[2] = acc;
    stats[3] = pass_count;
}
)";
    return s;
}

Subject
makeP8()
{
    Subject s;
    s.id = "P8";
    s.name = "linked list";
    s.kernel = "kernel";
    s.host = "host";
    s.fuzz_seed = 108;
    // List workload exercising malloc, free and pointer chasing only —
    // the error mix HeteroRefactor's dynamic-data support also handles.
    s.source = R"(
struct Node {
    int val;
    Node *next;
};
Node *push_front(Node *head, int v) {
    Node *fresh = (Node*)malloc(sizeof(Node));
    fresh->val = v;
    fresh->next = head;
    return fresh;
}
Node *reverse(Node *head) {
    Node *prev = (Node*)0;
    Node *curr = head;
    while (curr != 0) {
        Node *next = curr->next;
        curr->next = prev;
        prev = curr;
        curr = next;
    }
    return prev;
}
int list_sum(Node *head) {
    int acc = 0;
    Node *curr = head;
    while (curr != 0) {
        acc = acc + curr->val;
        curr = curr->next;
    }
    return acc;
}
int list_max(Node *head) {
    if (head == 0) { return 0; }
    int best = head->val;
    Node *curr = head->next;
    while (curr != 0) {
        if (curr->val > best) { best = curr->val; }
        curr = curr->next;
    }
    return best;
}
Node *remove_value(Node *head, int v) {
    while (head != 0 && head->val == v) {
        Node *dead = head;
        head = head->next;
        free(dead);
    }
    Node *curr = head;
    while (curr != 0 && curr->next != 0) {
        if (curr->next->val == v) {
            Node *dead = curr->next;
            curr->next = dead->next;
            free(dead);
        } else {
            curr = curr->next;
        }
    }
    return head;
}
int list_len(Node *head) {
    int n = 0;
    Node *curr = head;
    while (curr != 0) {
        n = n + 1;
        curr = curr->next;
    }
    return n;
}
void kernel(int data[64], int n, int out[4]) {
    if (n < 0) { n = 0; }
    if (n > 64) { n = 64; }
    Node *head = (Node*)0;
    for (int i = 0; i < n; i++) {
        head = push_front(head, data[i]);
    }
    head = reverse(head);
    out[0] = list_sum(head);
    out[1] = list_max(head);
    head = remove_value(head, data[0]);
    out[2] = list_len(head);
    out[3] = list_sum(head);
}
int host() {
    int data[64];
    int out[4];
    for (int i = 0; i < 64; i++) {
        data[i] = (i * 29 + 3) % 50;
    }
    for (int i = 0; i < 4; i++) { out[i] = 0; }
    kernel(data, 48, out);
    return out[0];
}
)";
    s.manual_source = R"(
int pool_val[2048];
int pool_next[2048];
int pool_top = 1;
int node_alloc(int v, int next) {
    int idx = 0;
    if (pool_top < 2048) {
        idx = pool_top;
        pool_top = pool_top + 1;
        pool_val[idx] = v;
        pool_next[idx] = next;
    }
    return idx;
}
int reverse(int head) {
    int prev = 0;
    int curr = head;
    while (curr != 0) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=64
        int next = pool_next[curr];
        pool_next[curr] = prev;
        prev = curr;
        curr = next;
    }
    return prev;
}
int list_sum(int head) {
    int acc = 0;
    int curr = head;
    while (curr != 0) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=64
        acc = acc + pool_val[curr];
        curr = pool_next[curr];
    }
    return acc;
}
int list_max(int head) {
    if (head == 0) { return 0; }
    int best = pool_val[head];
    int curr = pool_next[head];
    while (curr != 0) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=64
        if (pool_val[curr] > best) { best = pool_val[curr]; }
        curr = pool_next[curr];
    }
    return best;
}
int remove_value(int head, int v) {
    while (head != 0 && pool_val[head] == v) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=64
        head = pool_next[head];
    }
    int curr = head;
    while (curr != 0 && pool_next[curr] != 0) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=64
        if (pool_val[pool_next[curr]] == v) {
            pool_next[curr] = pool_next[pool_next[curr]];
        } else {
            curr = pool_next[curr];
        }
    }
    return head;
}
int list_len(int head) {
    int n = 0;
    int curr = head;
    while (curr != 0) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=64
        n = n + 1;
        curr = pool_next[curr];
    }
    return n;
}
void kernel(int data[64], int n, int out[4]) {
    if (n < 0) { n = 0; }
    if (n > 64) { n = 64; }
    pool_top = 1;
    int head = 0;
    for (int i = 0; i < n; i++) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=64
        head = node_alloc(data[i], head);
    }
    head = reverse(head);
    out[0] = list_sum(head);
    out[1] = list_max(head);
    head = remove_value(head, data[0]);
    out[2] = list_len(head);
    out[3] = list_sum(head);
}
)";
    return s;
}

Subject
makeP9()
{
    Subject s;
    s.id = "P9";
    s.name = "face detection";
    s.kernel = "fd_kernel";
    s.host = "host";
    // Misconfigured module entry point: the design's top is fd_kernel
    // but the project is configured with a stale name (Top Function
    // error, the paper's post no. 810885).
    s.initial_top = "fd_top_v1";
    s.fuzz_seed = 109;
    // A Viola-Jones-flavoured cascade on 16x16 frames: integral image,
    // streamed window pipeline built from struct stages (unsynthesizable
    // without explicit constructors / static connecting streams), and a
    // three-stage classifier cascade over learned-looking tables.
    s.source = R"(
int integral[289];
int stage_hits[3];
int weak_weight[48];
int weak_thresh[48];
void init_model() {
    for (int i = 0; i < 48; i++) {
        weak_weight[i] = (i * 2654435 + 101) % 19 - 9;
        weak_thresh[i] = (i * 40503 + 7) % 900;
    }
    for (int i = 0; i < 3; i++) {
        stage_hits[i] = 0;
    }
}
void compute_integral(int img[256], int w, int h) {
    for (int i = 0; i < 289; i++) {
        integral[i] = 0;
    }
    for (int y = 1; y <= h; y++) {
        for (int x = 1; x <= w; x++) {
            int pixel = img[(y - 1) * 16 + (x - 1)];
            integral[y * 17 + x] = pixel
                + integral[(y - 1) * 17 + x]
                + integral[y * 17 + (x - 1)]
                - integral[(y - 1) * 17 + (x - 1)];
        }
    }
}
int window_sum(int x0, int y0, int x1, int y1) {
    return integral[y1 * 17 + x1]
        - integral[y0 * 17 + x1]
        - integral[y1 * 17 + x0]
        + integral[y0 * 17 + x0];
}
int weak_classify(int f, int x, int y, int size) {
    int half = size / 2;
    int top = window_sum(x, y, x + size, y + half);
    int bottom = window_sum(x, y + half, x + size, y + size);
    int feature = top - bottom;
    int score = 0;
    if (feature * weak_weight[f] > weak_thresh[f]) {
        score = 1;
    }
    return score;
}
int run_stage(int stage, int x, int y, int size) {
    int votes = 0;
    for (int f = 0; f < 16; f++) {
        votes = votes + weak_classify(stage * 16 + f, x, y, size);
    }
    int pass = 0;
    if (votes >= 4 + stage * 2) {
        pass = 1;
        stage_hits[stage] = stage_hits[stage] + 1;
    }
    return pass;
}
int norm_img[256];
int window_var[64];
void normalize_frame(int img[256], int w, int h) {
    int total = 0;
    int count = w * h;
    for (int y = 0; y < h; y++) {
        for (int x = 0; x < w; x++) {
            total = total + img[y * 16 + x];
        }
    }
    int mean = total / count;
    for (int y = 0; y < h; y++) {
        for (int x = 0; x < w; x++) {
            int v = img[y * 16 + x] - mean + 128;
            if (v < 0) { v = 0; }
            if (v > 255) { v = 255; }
            norm_img[y * 16 + x] = v;
        }
    }
}
void window_variance(int w, int h) {
    for (int i = 0; i < 64; i++) {
        window_var[i] = 0;
    }
    int slot = 0;
    for (int y = 0; y + 8 <= h; y = y + 2) {
        for (int x = 0; x + 8 <= w; x = x + 2) {
            int area = window_sum(x, y, x + 8, y + 8);
            int mean = area / 64;
            int spread = window_sum(x, y, x + 4, y + 4)
                - window_sum(x + 4, y + 4, x + 8, y + 8);
            if (spread < 0) { spread = -spread; }
            if (slot < 64) {
                window_var[slot] = mean + spread;
                slot = slot + 1;
            }
        }
    }
}
struct WinFeed {
    hls::stream<int> &in;
    hls::stream<int> &out;
    int pump() {
        int moved = 0;
        while (!in.empty()) {
            int v = in.read();
            out.write(v * 2 + 1);
            moved = moved + 1;
        }
        return moved;
    }
};
void feed_pipeline(hls::stream<int> &raw, hls::stream<int> &cooked) {
    #pragma HLS dataflow
    hls::stream<int> tmp;
    WinFeed{ raw, tmp }.pump();
    WinFeed{ tmp, cooked }.pump();
}
int detect(int w, int h) {
    int found = 0;
    int size = 8;
    while (size <= h && size <= w) {
        for (int y = 0; y + size <= h; y = y + 2) {
            for (int x = 0; x + size <= w; x = x + 2) {
                int alive = 1;
                for (int stage = 0; stage < 3; stage++) {
                    if (alive == 1) {
                        if (run_stage(stage, x, y, size) == 0) {
                            alive = 0;
                        }
                    }
                }
                if (alive == 1) {
                    found = found + 1;
                }
            }
        }
        size = size * 2;
    }
    return found;
}
void fd_kernel(int img[256], int w, int h,
               hls::stream<int> &raw, hls::stream<int> &cooked,
               int out[8]) {
    if (w < 1) { w = 1; }
    if (w > 16) { w = 16; }
    if (h < 1) { h = 1; }
    if (h > 16) { h = 16; }
    init_model();
    normalize_frame(img, w, h);
    compute_integral(norm_img, w, h);
    window_variance(w, h);
    feed_pipeline(raw, cooked);
    int found = detect(w, h);
    out[0] = found;
    out[1] = stage_hits[0];
    out[2] = stage_hits[1];
    out[3] = stage_hits[2];
    out[4] = window_sum(0, 0, w, h);
    out[5] = window_var[0];
    out[6] = window_var[5];
    out[7] = found * 2 + 1;
}
int host() {
    int img[256];
    int out[8];
    for (int i = 0; i < 256; i++) {
        img[i] = (i * i + 3 * i) % 255;
    }
    for (int i = 0; i < 8; i++) { out[i] = 0; }
    int raw[4];
    raw[0] = 1;
    raw[1] = 2;
    raw[2] = 3;
    raw[3] = 4;
    hls::stream<int> s_raw;
    hls::stream<int> s_cooked;
    for (int i = 0; i < 4; i++) { s_raw.write(raw[i]); }
    fd_kernel(img, 16, 16, s_raw, s_cooked, out);
    return out[0];
}
)";
    s.manual_source = R"(
int integral[289];
int stage_hits[3];
int weak_weight[48];
int weak_thresh[48];
void init_model() {
    for (int i = 0; i < 48; i++) {
        #pragma HLS pipeline II=1
        weak_weight[i] = (i * 2654435 + 101) % 19 - 9;
        weak_thresh[i] = (i * 40503 + 7) % 900;
    }
    for (int i = 0; i < 3; i++) {
        stage_hits[i] = 0;
    }
}
void compute_integral(int img[256], int w, int h) {
    for (int i = 0; i < 289; i++) {
        #pragma HLS pipeline II=1
        integral[i] = 0;
    }
    for (int y = 1; y <= h; y++) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=16
        for (int x = 1; x <= w; x++) {
            #pragma HLS pipeline II=1
            #pragma HLS loop_tripcount max=16
            int pixel = img[(y - 1) * 16 + (x - 1)];
            integral[y * 17 + x] = pixel
                + integral[(y - 1) * 17 + x]
                + integral[y * 17 + (x - 1)]
                - integral[(y - 1) * 17 + (x - 1)];
        }
    }
}
int window_sum(int x0, int y0, int x1, int y1) {
    return integral[y1 * 17 + x1]
        - integral[y0 * 17 + x1]
        - integral[y1 * 17 + x0]
        + integral[y0 * 17 + x0];
}
int weak_classify(int f, int x, int y, int size) {
    int half = size / 2;
    int top = window_sum(x, y, x + size, y + half);
    int bottom = window_sum(x, y + half, x + size, y + size);
    int feature = top - bottom;
    int score = 0;
    if (feature * weak_weight[f] > weak_thresh[f]) {
        score = 1;
    }
    return score;
}
int run_stage(int stage, int x, int y, int size) {
    int votes = 0;
    for (int f = 0; f < 16; f++) {
        #pragma HLS pipeline II=1
        votes = votes + weak_classify(stage * 16 + f, x, y, size);
    }
    int pass = 0;
    if (votes >= 4 + stage * 2) {
        pass = 1;
        stage_hits[stage] = stage_hits[stage] + 1;
    }
    return pass;
}
int norm_img[256];
int window_var[64];
void normalize_frame(int img[256], int w, int h) {
    int total = 0;
    int count = w * h;
    for (int y = 0; y < h; y++) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=16
        for (int x = 0; x < w; x++) {
            #pragma HLS pipeline II=1
            #pragma HLS loop_tripcount max=16
            total = total + img[y * 16 + x];
        }
    }
    int mean = total / count;
    for (int y = 0; y < h; y++) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=16
        for (int x = 0; x < w; x++) {
            #pragma HLS pipeline II=1
            #pragma HLS loop_tripcount max=16
            int v = img[y * 16 + x] - mean + 128;
            if (v < 0) { v = 0; }
            if (v > 255) { v = 255; }
            norm_img[y * 16 + x] = v;
        }
    }
}
void window_variance(int w, int h) {
    for (int i = 0; i < 64; i++) {
        #pragma HLS pipeline II=1
        window_var[i] = 0;
    }
    int slot = 0;
    for (int y = 0; y + 8 <= h; y = y + 2) {
        #pragma HLS loop_tripcount max=8
        for (int x = 0; x + 8 <= w; x = x + 2) {
            #pragma HLS pipeline II=1
            #pragma HLS loop_tripcount max=8
            int area = window_sum(x, y, x + 8, y + 8);
            int mean = area / 64;
            int spread = window_sum(x, y, x + 4, y + 4)
                - window_sum(x + 4, y + 4, x + 8, y + 8);
            if (spread < 0) { spread = -spread; }
            if (slot < 64) {
                window_var[slot] = mean + spread;
                slot = slot + 1;
            }
        }
    }
}
struct WinFeed {
    hls::stream<int> &in;
    hls::stream<int> &out;
    WinFeed(hls::stream<int> &in_i, hls::stream<int> &out_i)
        : in(in_i), out(out_i) {}
    int pump() {
        int moved = 0;
        while (!in.empty()) {
            #pragma HLS pipeline II=1
            #pragma HLS loop_tripcount max=64
            int v = in.read();
            out.write(v * 2 + 1);
            moved = moved + 1;
        }
        return moved;
    }
};
void feed_pipeline(hls::stream<int> &raw, hls::stream<int> &cooked) {
    #pragma HLS dataflow
    static hls::stream<int> tmp;
    WinFeed{ raw, tmp }.pump();
    WinFeed{ tmp, cooked }.pump();
}
int detect(int w, int h) {
    int found = 0;
    int size = 8;
    while (size <= h && size <= w) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=2
        for (int y = 0; y + size <= h; y = y + 2) {
            #pragma HLS pipeline II=1
            #pragma HLS loop_tripcount max=8
            for (int x = 0; x + size <= w; x = x + 2) {
                #pragma HLS pipeline II=1
                #pragma HLS loop_tripcount max=8
                int alive = 1;
                for (int stage = 0; stage < 3; stage++) {
                    #pragma HLS pipeline II=1
                    if (alive == 1) {
                        if (run_stage(stage, x, y, size) == 0) {
                            alive = 0;
                        }
                    }
                }
                if (alive == 1) {
                    found = found + 1;
                }
            }
        }
        size = size * 2;
    }
    return found;
}
void fd_kernel(int img[256], int w, int h,
               hls::stream<int> &raw, hls::stream<int> &cooked,
               int out[8]) {
    if (w < 1) { w = 1; }
    if (w > 16) { w = 16; }
    if (h < 1) { h = 1; }
    if (h > 16) { h = 16; }
    init_model();
    normalize_frame(img, w, h);
    compute_integral(norm_img, w, h);
    window_variance(w, h);
    feed_pipeline(raw, cooked);
    int found = detect(w, h);
    out[0] = found;
    out[1] = stage_hits[0];
    out[2] = stage_hits[1];
    out[3] = stage_hits[2];
    out[4] = window_sum(0, 0, w, h);
    out[5] = window_var[0];
    out[6] = window_var[5];
    out[7] = found * 2 + 1;
}
)";
    // One handcrafted smoke test (Table 4: a single test, 15%).
    {
        std::vector<long> img(256, 10);
        std::vector<long> raw{1};
        s.existing_tests.push_back(
            {KernelArg::ofInts(img), KernelArg::ofInt(8),
             KernelArg::ofInt(8), KernelArg::ofInts(raw),
             KernelArg::ofInts({}), KernelArg::ofInts({0, 0, 0, 0, 0, 0,
                                                       0, 0})});
    }
    return s;
}

Subject
makeP10()
{
    Subject s;
    s.id = "P10";
    s.name = "digit recognition";
    s.kernel = "kernel";
    s.host = "host";
    s.fuzz_seed = 110;
    // Nearest-template digit recognition over 16-pixel glyph rows; the
    // distance accumulator is packed through a union, which HLS cannot
    // synthesize.
    s.source = R"(
union Acc {
    int dist;
    int votes;
};
int templates[160];
void init_templates() {
    for (int d = 0; d < 10; d++) {
        for (int p = 0; p < 16; p++) {
            templates[d * 16 + p] = ((d * 131 + p * 17) % 32) - 16;
        }
    }
}
int distance(int glyph[16], int d) {
    union Acc acc;
    acc.dist = 0;
    for (int p = 0; p < 16; p++) {
        int delta = glyph[p] - templates[d * 16 + p];
        if (delta < 0) { delta = -delta; }
        acc.dist = acc.dist + delta;
    }
    return acc.dist;
}
int weighted_distance(int glyph[16], int d) {
    union Acc acc;
    acc.dist = 0;
    for (int p = 0; p < 16; p++) {
        int delta = glyph[p] - templates[d * 16 + p];
        if (delta < 0) { delta = -delta; }
        int weight = 1;
        if (p >= 4 && p < 12) { weight = 2; }
        acc.dist = acc.dist + delta * weight;
    }
    return acc.dist;
}
int votes_for[10];
int kernel(int glyph[16]) {
    init_templates();
    for (int d = 0; d < 10; d++) {
        votes_for[d] = 0;
    }
    int best_d = 0;
    int best = distance(glyph, 0);
    for (int d = 1; d < 10; d++) {
        int dist = distance(glyph, d);
        if (dist < best) {
            best = dist;
            best_d = d;
        }
    }
    votes_for[best_d] = votes_for[best_d] + 2;
    int wbest_d = 0;
    int wbest = weighted_distance(glyph, 0);
    for (int d = 1; d < 10; d++) {
        int dist = weighted_distance(glyph, d);
        if (dist < wbest) {
            wbest = dist;
            wbest_d = d;
        }
    }
    votes_for[wbest_d] = votes_for[wbest_d] + 1;
    int winner = 0;
    for (int d = 1; d < 10; d++) {
        if (votes_for[d] > votes_for[winner]) { winner = d; }
    }
    union Acc tally;
    tally.votes = winner * 100 + best % 100;
    return tally.votes;
}
int host() {
    int glyph[16];
    for (int p = 0; p < 16; p++) {
        glyph[p] = ((3 * 131 + p * 17) % 32) - 16;
    }
    return kernel(glyph);
}
)";
    s.manual_source = R"(
int templates[160];
void init_templates() {
    for (int d = 0; d < 10; d++) {
        #pragma HLS pipeline II=1
        for (int p = 0; p < 16; p++) {
            #pragma HLS pipeline II=1
            templates[d * 16 + p] = ((d * 131 + p * 17) % 32) - 16;
        }
    }
}
int distance(int glyph[16], int d) {
    int dist = 0;
    for (int p = 0; p < 16; p++) {
        #pragma HLS pipeline II=1
        #pragma HLS unroll factor=4
        int delta = glyph[p] - templates[d * 16 + p];
        if (delta < 0) { delta = -delta; }
        dist = dist + delta;
    }
    return dist;
}
int weighted_distance(int glyph[16], int d) {
    int dist = 0;
    for (int p = 0; p < 16; p++) {
        #pragma HLS pipeline II=1
        #pragma HLS unroll factor=4
        int delta = glyph[p] - templates[d * 16 + p];
        if (delta < 0) { delta = -delta; }
        int weight = 1;
        if (p >= 4 && p < 12) { weight = 2; }
        dist = dist + delta * weight;
    }
    return dist;
}
int votes_for[10];
int kernel(int glyph[16]) {
    #pragma HLS array_partition variable=glyph factor=4
    init_templates();
    for (int d = 0; d < 10; d++) {
        #pragma HLS pipeline II=1
        votes_for[d] = 0;
    }
    int best_d = 0;
    int best = distance(glyph, 0);
    for (int d = 1; d < 10; d++) {
        #pragma HLS pipeline II=1
        int dist = distance(glyph, d);
        if (dist < best) {
            best = dist;
            best_d = d;
        }
    }
    votes_for[best_d] = votes_for[best_d] + 2;
    int wbest_d = 0;
    int wbest = weighted_distance(glyph, 0);
    for (int d = 1; d < 10; d++) {
        #pragma HLS pipeline II=1
        int dist = weighted_distance(glyph, d);
        if (dist < wbest) {
            wbest = dist;
            wbest_d = d;
        }
    }
    votes_for[wbest_d] = votes_for[wbest_d] + 1;
    int winner = 0;
    for (int d = 1; d < 10; d++) {
        #pragma HLS pipeline II=1
        if (votes_for[d] > votes_for[winner]) { winner = d; }
    }
    int votes = winner * 100 + best % 100;
    return votes;
}
)";
    for (int t = 0; t < 11; ++t) {
        std::vector<long> glyph(16);
        for (int p = 0; p < 16; ++p)
            glyph[p] = (((t % 10) * 131 + p * 17) % 32) - 16;
        s.existing_tests.push_back({KernelArg::ofInts(glyph)});
    }
    return s;
}

} // namespace detail

} // namespace heterogen::subjects
