#include "subjects/forum_corpus.h"

#include "support/rng.h"

namespace heterogen::subjects {

using hls::ErrorCategory;

double
paperCategoryShare(ErrorCategory category)
{
    // Figure 3 proportions.
    switch (category) {
      case ErrorCategory::UnsupportedDataTypes: return 0.257;
      case ErrorCategory::TopFunction: return 0.198;
      case ErrorCategory::DataflowOptimization: return 0.161;
      case ErrorCategory::LoopParallelization: return 0.161;
      case ErrorCategory::StructAndUnion: return 0.141;
      case ErrorCategory::DynamicDataStructures: return 0.082;
      // The streaming-dataflow category postdates the paper's 2022
      // forum study; zero share keeps the generated corpus (and its
      // RNG draw sequence) byte-identical to the pre-streaming build.
      case ErrorCategory::StreamingDataflow: return 0;
    }
    return 0;
}

namespace {

struct Template
{
    const char *title;
    const char *message;
};

const std::vector<Template> &
templatesFor(ErrorCategory category)
{
    static const std::vector<Template> dynamic = {
        {"dynamic memory allocation in synthesis",
         "ERROR: [SYNCHK 200-31] dynamic memory allocation/deallocation "
         "is not supported (variable '%s')."},
        {"array with unknown size",
         "ERROR: [SYNCHK 200-61] unsupported memory access on variable "
         "'%s' which is (or contains) an array with unknown size at "
         "compile time."},
        {"recursive function fails synthesis",
         "ERROR: [XFORM 202-876] Synthesizability check failed: "
         "recursive functions are not supported ('%s')."},
        {"malloc in kernel code",
         "Synthesizability check failed because malloc is used to size "
         "the buffer '%s' at run time."},
    };
    static const std::vector<Template> types = {
        {"error with fixed point design",
         "ERROR: Call of overloaded 'pow()' is ambiguous for the long "
         "double variable '%s'."},
        {"long double not synthesizable",
         "ERROR: [SYNCHK 200-11] type 'long double' on variable '%s' is "
         "not synthesizable."},
        {"pointer to pointer synthesis error",
         "ERROR: [SYNCHK 200-41] unsupported pointer usage on variable "
         "'%s'; pointers are not synthesizable."},
        {"implicit conversion to ap_fixed",
         "ERROR: implicit type conversion of '%s' is not supported for "
         "custom FPGA types; explicit type casting required."},
        {"cannot cast operand",
         "ERROR: operator overloading for '%s' with a custom-width "
         "float type requires explicit type casting."},
    };
    static const std::vector<Template> dataflow = {
        {"dataflow directive",
         "ERROR: [XFORM 203-711] Argument '%s' failed dataflow "
         "checking."},
        {"array failed dataflow checking",
         "ERROR: [XFORM 203-711] Array '%s' failed dataflow checking: "
         "size is not a multiple of the partition factor."},
        {"array_partition factor",
         "ERROR: array_partition of variable '%s' failed dataflow "
         "checking in the DATAFLOW region."},
    };
    static const std::vector<Template> loops = {
        {"vivado hls loop unrolling option region",
         "ERROR: [HLS 200-70] Pre-synthesis failed: unroll factor on "
         "loop '%s' interacts with the enclosing region."},
        {"cannot unroll loop",
         "ERROR: [XFORM 203-113] cannot unroll loop '%s' (variable trip "
         "count)."},
        {"pipeline II violation",
         "ERROR: pipeline of loop '%s' cannot achieve the requested "
         "initiation interval; pre-synthesis failed."},
    };
    static const std::vector<Template> structs = {
        {"using streams in objects does not synthesize",
         "ERROR: [SYNCHK 200-71] Argument 'this' has an unsynthesizable "
         "struct type '%s'."},
        {"struct constructor missing",
         "ERROR: struct '%s' needs an explicit constructor before it "
         "can be synthesized."},
        {"stream member must be static",
         "ERROR: [XFORM 203-712] stream '%s' connecting struct "
         "instances in a DATAFLOW region must be static."},
        {"union in kernel",
         "ERROR: [SYNCHK 200-72] union type '%s' is not synthesizable."},
    };
    static const std::vector<Template> top = {
        {"cannot find the top function",
         "ERROR: [HLS 200-10] Cannot find the top function '%s' in the "
         "design."},
        {"invalid clock period",
         "ERROR: [HLS 200-24] top function configuration: invalid clock "
         "frequency for solution '%s'."},
        {"unknown device part",
         "ERROR: [HLS 200-25] top function configuration: unknown "
         "device '%s'."},
        {"interface pragma port",
         "ERROR: top function interface configuration error: port '%s' "
         "is not a parameter of the design."},
    };
    switch (category) {
      case ErrorCategory::DynamicDataStructures: return dynamic;
      case ErrorCategory::UnsupportedDataTypes: return types;
      case ErrorCategory::DataflowOptimization: return dataflow;
      case ErrorCategory::LoopParallelization: return loops;
      case ErrorCategory::StructAndUnion: return structs;
      case ErrorCategory::TopFunction: return top;
      // Zero paper share (see paperCategoryShare): never drawn from,
      // but the switch must still hand back a valid pool.
      case ErrorCategory::StreamingDataflow: return dataflow;
    }
    return dynamic;
}

std::string
instantiate(const char *format, const std::string &symbol)
{
    std::string out;
    for (const char *p = format; *p; ++p) {
        if (p[0] == '%' && p[1] == 's') {
            out += symbol;
            ++p;
        } else {
            out += *p;
        }
    }
    return out;
}

/**
 * Minimal repro program a post in `category` quotes next to its error,
 * with the offending symbol spliced in. Each is valid CIR and actually
 * exhibits the category it illustrates.
 */
std::string
snippetFor(ErrorCategory category, const std::string &symbol)
{
    const char *format = "";
    switch (category) {
      case ErrorCategory::DynamicDataStructures:
        format = "int kernel(int n) {\n"
                 "    int *%s = (int*)malloc(sizeof(int) * n);\n"
                 "    %s[0] = n;\n"
                 "    int out = %s[0];\n"
                 "    free(%s);\n"
                 "    return out;\n"
                 "}\n";
        break;
      case ErrorCategory::UnsupportedDataTypes:
        format = "int kernel(int x) {\n"
                 "    long double %s = x;\n"
                 "    %s = %s + 1;\n"
                 "    return %s;\n"
                 "}\n";
        break;
      case ErrorCategory::DataflowOptimization:
        format = "void fill(int %s[16]) {\n"
                 "    for (int i = 0; i < 16; i++) { %s[i] = i; }\n"
                 "}\n"
                 "int kernel(int n) {\n"
                 "    #pragma HLS dataflow\n"
                 "    int %s[16];\n"
                 "    fill(%s);\n"
                 "    return %s[0] + n;\n"
                 "}\n";
        break;
      case ErrorCategory::LoopParallelization:
        format = "int kernel(int n) {\n"
                 "    int %s = 0;\n"
                 "    for (int i = 0; i < n; i++) {\n"
                 "        #pragma HLS unroll factor=4\n"
                 "        %s += i;\n"
                 "    }\n"
                 "    return %s;\n"
                 "}\n";
        break;
      case ErrorCategory::StructAndUnion:
        format = "union %s { int bits; float real; };\n"
                 "int kernel(int x) {\n"
                 "    union %s u;\n"
                 "    u.bits = x;\n"
                 "    return u.bits;\n"
                 "}\n";
        break;
      case ErrorCategory::TopFunction:
        format = "int %s(int x) { return x + 1; }\n"
                 "int kernel(int x) { return %s(x); }\n";
        break;
      case ErrorCategory::StreamingDataflow:
        format = "void feed(hls::stream<int> &%s) {\n"
                 "    for (int i = 0; i < 16; i++) { %s.write(i); }\n"
                 "}\n"
                 "int kernel(int n) {\n"
                 "    #pragma HLS dataflow\n"
                 "    hls::stream<int> %s;\n"
                 "    feed(%s);\n"
                 "    return n;\n"
                 "}\n";
        break;
    }
    return instantiate(format, symbol);
}

const char *kSymbols[] = {
    "line_buf_a", "data", "tmp", "A", "curr", "my_func", "If2",
    "in_ld", "root", "acc", "frame", "weights", "top_fn", "xcvu9p",
};

} // namespace

std::vector<ForumPost>
generateForumCorpus(int n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<ForumPost> posts;
    posts.reserve(n);
    // Deterministic counts per category from the paper's proportions;
    // remainder goes to the largest bucket.
    int assigned = 0;
    std::vector<std::pair<ErrorCategory, int>> counts;
    for (ErrorCategory c : hls::allCategories()) {
        int k = static_cast<int>(paperCategoryShare(c) * n);
        counts.emplace_back(c, k);
        assigned += k;
    }
    counts[1].second += n - assigned; // top up UnsupportedDataTypes

    int post_id = 500000;
    for (const auto &[category, k] : counts) {
        const auto &tpls = templatesFor(category);
        for (int i = 0; i < k; ++i) {
            const Template &tpl = tpls[rng.pickIndex(tpls)];
            const char *symbol =
                kSymbols[rng.below(std::size(kSymbols))];
            ForumPost post;
            post.post_id = post_id + int(rng.below(400000));
            post.title = tpl.title;
            post.message = instantiate(tpl.message, symbol);
            post.snippet = snippetFor(category, symbol);
            post.ground_truth = category;
            posts.push_back(std::move(post));
        }
    }
    rng.shuffle(posts);
    return posts;
}

} // namespace heterogen::subjects
