/**
 * @file
 * Synthetic Xilinx-forum post corpus for the Figure 3 study.
 *
 * The paper classifies 1,000 forum posts into six HLS-incompatibility
 * categories. The posts themselves are proprietary forum content, so we
 * generate a corpus whose error messages follow realistic per-category
 * templates at the paper's observed mix; the classifier that buckets
 * them is HeteroGen's real repair-localization keyword classifier.
 */

#ifndef HETEROGEN_SUBJECTS_FORUM_CORPUS_H
#define HETEROGEN_SUBJECTS_FORUM_CORPUS_H

#include <string>
#include <vector>

#include "hls/errors.h"

namespace heterogen::subjects {

/** One synthetic Q&A post. */
struct ForumPost
{
    int post_id = 0;
    std::string title;
    std::string message; ///< the quoted toolchain error text
    /**
     * The minimal repro program quoted in the post (CIR subset, always
     * parseable) — real forum posts attach the offending code next to
     * the error, and the printer property tests round-trip every one.
     */
    std::string snippet;
    hls::ErrorCategory ground_truth;
};

/** Per-category share of posts matching the paper's pie chart. */
double paperCategoryShare(hls::ErrorCategory category);

/** Generate a corpus of n posts at the paper's category mix. */
std::vector<ForumPost> generateForumCorpus(int n, uint64_t seed = 2022);

} // namespace heterogen::subjects

#endif // HETEROGEN_SUBJECTS_FORUM_CORPUS_H
