/** @file Subjects P1-P5: signal transmission, arithmetic computation,
 * merge sort, image processing, graph traversal. */

#include "subjects/subjects_detail.h"

namespace heterogen::subjects {

using interp::KernelArg;

namespace detail {

Subject
makeP1()
{
    Subject s;
    s.id = "P1";
    s.name = "signal transmission";
    s.kernel = "kernel";
    s.host = "host";
    s.fuzz_seed = 101;
    // RGB -> YUV conversion via plain arithmetic with long double
    // coefficients; no loops or arrays, so no performance edit applies.
    s.source = R"(
float kernel(int r, int g, int b) {
    long double y = 0.299L * r + 0.587L * g + 0.114L * b;
    long double u = 0.436L * b - 0.147L * r - 0.289L * g;
    long double v = 0.615L * r - 0.515L * g - 0.1L * b;
    long double chroma = u * 0.5L + v * 0.5L;
    long double luma = y + chroma * 0.0001L;
    return luma;
}
float host() {
    return kernel(120, 64, 32);
}
)";
    s.manual_source = R"(
float kernel(int r, int g, int b) {
    fpga_float<8,52> y = (fpga_float<8,52>)0.299 * (fpga_float<8,52>)r
        + (fpga_float<8,52>)0.587 * (fpga_float<8,52>)g
        + (fpga_float<8,52>)0.114 * (fpga_float<8,52>)b;
    fpga_float<8,52> u = (fpga_float<8,52>)0.436 * (fpga_float<8,52>)b
        - (fpga_float<8,52>)0.147 * (fpga_float<8,52>)r
        - (fpga_float<8,52>)0.289 * (fpga_float<8,52>)g;
    fpga_float<8,52> v = (fpga_float<8,52>)0.615 * (fpga_float<8,52>)r
        - (fpga_float<8,52>)0.515 * (fpga_float<8,52>)g
        - (fpga_float<8,52>)0.1 * (fpga_float<8,52>)b;
    fpga_float<8,52> chroma = u * (fpga_float<8,52>)0.5
        + v * (fpga_float<8,52>)0.5;
    fpga_float<8,52> luma = y + chroma * (fpga_float<8,52>)0.0001;
    return luma;
}
)";
    return s;
}

Subject
makeP2()
{
    Subject s;
    s.id = "P2";
    s.name = "arithmetic computation";
    s.kernel = "kernel";
    s.host = "host";
    s.fuzz_seed = 102;
    // Polynomial/transcendental evaluation whose long double accumulator
    // makes the pow() overload ambiguous under HLS.
    s.source = R"(
float kernel(float x[64], int n) {
    if (n < 0) { n = 0; }
    if (n > 64) { n = 64; }
    long double acc = 0.0L;
    for (int i = 0; i < n; i++) {
        long double term = pow(acc * 0.125L + x[i], 2.0);
        long double damped = term * 0.5L + fabs(x[i]);
        acc = acc + damped;
    }
    long double scaled = acc * 0.25L;
    return scaled;
}
float host() {
    float samples[64];
    for (int i = 0; i < 64; i++) {
        samples[i] = i * 0.5 - 1.0;
    }
    return kernel(samples, 64);
}
)";
    s.manual_source = R"(
float kernel(float x[64], int n) {
    if (n < 0) { n = 0; }
    if (n > 64) { n = 64; }
    fpga_float<8,52> acc = 0.0;
    for (int i = 0; i < n; i++) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=64
        fpga_float<8,52> term = pow(acc * (fpga_float<8,52>)0.125
            + (fpga_float<8,52>)x[i], 2.0);
        fpga_float<8,52> damped = term * (fpga_float<8,52>)0.5
            + (fpga_float<8,52>)fabs(x[i]);
        acc = acc + damped;
    }
    fpga_float<8,52> scaled = acc * (fpga_float<8,52>)0.25;
    return scaled;
}
)";
    return s;
}

Subject
makeP3()
{
    Subject s;
    s.id = "P3";
    s.name = "merge sort";
    s.kernel = "kernel";
    s.host = "host";
    s.fuzz_seed = 103;
    // Linked-list merge sort: malloc-built lists, pointer traversal and
    // void self-recursion communicating through a global result head —
    // the full dynamic-data-structure error mix of HeteroRefactor's P3.
    s.source = R"(
struct Node {
    int val;
    Node *next;
};
Node *sorted_head = 0;
Node *list_from(int arr[256], int n) {
    Node *head = (Node*)0;
    for (int i = n - 1; i >= 0; i--) {
        Node *fresh = (Node*)malloc(sizeof(Node));
        fresh->val = arr[i];
        fresh->next = head;
        head = fresh;
    }
    return head;
}
void append_rest(Node *tail, Node *rest) {
    Node *curr = rest;
    Node *last = tail;
    while (curr != 0) {
        Node *fresh = (Node*)malloc(sizeof(Node));
        fresh->val = curr->val;
        fresh->next = (Node*)0;
        last->next = fresh;
        last = fresh;
        curr = curr->next;
    }
}
void merge(Node *a, Node *b) {
    Node *result = (Node*)malloc(sizeof(Node));
    result->val = 0;
    result->next = (Node*)0;
    Node *tail = result;
    while (a != 0 && b != 0) {
        Node *fresh = (Node*)malloc(sizeof(Node));
        fresh->next = (Node*)0;
        if (a->val <= b->val) {
            fresh->val = a->val;
            a = a->next;
        } else {
            fresh->val = b->val;
            b = b->next;
        }
        tail->next = fresh;
        tail = fresh;
    }
    if (a != 0) {
        append_rest(tail, a);
    }
    if (b != 0) {
        append_rest(tail, b);
    }
    sorted_head = result->next;
}
void msort(Node *head, int n) {
    if (n <= 1) {
        sorted_head = head;
        return;
    }
    int half = n / 2;
    Node *mid = head;
    for (int i = 0; i < half - 1; i++) {
        mid = mid->next;
    }
    Node *back = mid->next;
    mid->next = (Node*)0;
    msort(head, half);
    Node *left_sorted = sorted_head;
    msort(back, n - half);
    Node *right_sorted = sorted_head;
    merge(left_sorted, right_sorted);
}
void kernel(int data[256], int n) {
    if (n < 0) { n = 0; }
    if (n > 256) { n = 256; }
    Node *head = list_from(data, n);
    sorted_head = (Node*)0;
    msort(head, n);
    Node *curr = sorted_head;
    int i = 0;
    while (curr != 0) {
        data[i] = curr->val;
        i = i + 1;
        curr = curr->next;
    }
}
int host() {
    int data[256];
    for (int i = 0; i < 256; i++) {
        data[i] = (i * 7919 + 13) % 512 - 256;
    }
    kernel(data, 200);
    return data[0];
}
)";
    // Manual port: bottom-up iterative merge sort over static buffers.
    s.manual_source = R"(
int ms_buf[256];
int ms_tmp[256];
void merge_runs(int lo, int mid, int hi) {
    int i = lo;
    int j = mid;
    int k = lo;
    while (i < mid && j < hi) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=256
        if (ms_buf[i] <= ms_buf[j]) {
            ms_tmp[k] = ms_buf[i];
            i = i + 1;
        } else {
            ms_tmp[k] = ms_buf[j];
            j = j + 1;
        }
        k = k + 1;
    }
    while (i < mid) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=256
        ms_tmp[k] = ms_buf[i];
        i = i + 1;
        k = k + 1;
    }
    while (j < hi) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=256
        ms_tmp[k] = ms_buf[j];
        j = j + 1;
        k = k + 1;
    }
    int c = lo;
    while (c < hi) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=256
        ms_buf[c] = ms_tmp[c];
        c = c + 1;
    }
}
void kernel(int data[256], int n) {
    if (n < 0) { n = 0; }
    if (n > 256) { n = 256; }
    for (int i = 0; i < n; i++) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=256
        ms_buf[i] = data[i];
    }
    int width = 1;
    while (width < n) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=9
        int lo = 0;
        while (lo < n - width) {
            #pragma HLS pipeline II=1
            #pragma HLS loop_tripcount max=128
            int mid = lo + width;
            int hi = lo + 2 * width;
            if (hi > n) { hi = n; }
            merge_runs(lo, mid, hi);
            lo = lo + 2 * width;
        }
        width = 2 * width;
    }
    for (int i = 0; i < n; i++) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=256
        data[i] = ms_buf[i];
    }
}
)";
    // Pre-existing handcrafted tests: tiny fixed lists (Table 4: 10
    // tests reaching only a quarter of the branches).
    for (int t = 0; t < 10; ++t) {
        std::vector<long> arr(256, 0);
        arr[0] = t;
        arr[1] = t - 1;
        s.existing_tests.push_back(
            {KernelArg::ofInts(arr), KernelArg::ofInt(t % 3)});
    }
    return s;
}

Subject
makeP4()
{
    Subject s;
    s.id = "P4";
    s.name = "image processing";
    s.kernel = "kernel";
    s.host = "host";
    s.fuzz_seed = 104;
    // A 16x16 filtering pipeline: box blur, Sobel-style gradient,
    // histogram stretch and threshold. The blur stage buffers one image
    // row in a variable-length array sized by the runtime column count,
    // which HLS rejects (the paper's line_buf scenario).
    s.source = R"(
int clampv(int v, int lo, int hi) {
    if (v < lo) { return lo; }
    if (v > hi) { return hi; }
    return v;
}
int pix(int img[256], int w, int h, int x, int y) {
    int cx = clampv(x, 0, w - 1);
    int cy = clampv(y, 0, h - 1);
    return img[cy * 16 + cx];
}
void blur(int src[256], int dst[256], int w, int h) {
    int cols = w;
    int line_buf[cols];
    for (int y = 0; y < h; y++) {
        for (int x = 0; x < w; x++) {
            line_buf[x] = pix(src, w, h, x, y - 1);
        }
        for (int x = 0; x < w; x++) {
            int acc = line_buf[x];
            acc = acc + pix(src, w, h, x - 1, y);
            acc = acc + pix(src, w, h, x, y);
            acc = acc + pix(src, w, h, x + 1, y);
            acc = acc + pix(src, w, h, x, y + 1);
            dst[y * 16 + x] = acc / 5;
        }
    }
}
void gradient(int src[256], int dst[256], int w, int h) {
    for (int y = 0; y < h; y++) {
        for (int x = 0; x < w; x++) {
            int gx = pix(src, w, h, x + 1, y) - pix(src, w, h, x - 1, y);
            int gy = pix(src, w, h, x, y + 1) - pix(src, w, h, x, y - 1);
            int ax = gx;
            if (ax < 0) { ax = -ax; }
            int ay = gy;
            if (ay < 0) { ay = -ay; }
            dst[y * 16 + x] = ax + ay;
        }
    }
}
void median3(int src[256], int dst[256], int w, int h) {
    for (int y = 0; y < h; y++) {
        for (int x = 0; x < w; x++) {
            int a = pix(src, w, h, x - 1, y);
            int b = pix(src, w, h, x, y);
            int c = pix(src, w, h, x + 1, y);
            int lo = a;
            if (b < lo) { lo = b; }
            if (c < lo) { lo = c; }
            int hi = a;
            if (b > hi) { hi = b; }
            if (c > hi) { hi = c; }
            dst[y * 16 + x] = a + b + c - lo - hi;
        }
    }
}
void dilate(int src[256], int dst[256], int w, int h) {
    for (int y = 0; y < h; y++) {
        for (int x = 0; x < w; x++) {
            int best = pix(src, w, h, x, y);
            if (pix(src, w, h, x - 1, y) > best) {
                best = pix(src, w, h, x - 1, y);
            }
            if (pix(src, w, h, x + 1, y) > best) {
                best = pix(src, w, h, x + 1, y);
            }
            if (pix(src, w, h, x, y - 1) > best) {
                best = pix(src, w, h, x, y - 1);
            }
            if (pix(src, w, h, x, y + 1) > best) {
                best = pix(src, w, h, x, y + 1);
            }
            dst[y * 16 + x] = best;
        }
    }
}
void stretch(int src[256], int dst[256], int w, int h) {
    int lo = 255;
    int hi = 0;
    for (int y = 0; y < h; y++) {
        for (int x = 0; x < w; x++) {
            int v = src[y * 16 + x];
            if (v < lo) { lo = v; }
            if (v > hi) { hi = v; }
        }
    }
    int span = hi - lo;
    if (span <= 0) { span = 1; }
    for (int y = 0; y < h; y++) {
        for (int x = 0; x < w; x++) {
            int v = src[y * 16 + x] - lo;
            dst[y * 16 + x] = v * 255 / span;
        }
    }
}
void threshold(int src[256], int dst[256], int w, int h, int cut) {
    for (int y = 0; y < h; y++) {
        for (int x = 0; x < w; x++) {
            if (src[y * 16 + x] >= cut) {
                dst[y * 16 + x] = 255;
            } else {
                dst[y * 16 + x] = 0;
            }
        }
    }
}
int stage_a[256];
int stage_b[256];
void kernel(int img[256], int out[256], int w, int h, int cut) {
    if (w < 1) { w = 1; }
    if (w > 16) { w = 16; }
    if (h < 1) { h = 1; }
    if (h > 16) { h = 16; }
    if (cut < 0) { cut = 0; }
    if (cut > 255) { cut = 255; }
    blur(img, stage_a, w, h);
    gradient(stage_a, stage_b, w, h);
    median3(stage_b, stage_a, w, h);
    dilate(stage_a, stage_b, w, h);
    stretch(stage_b, stage_a, w, h);
    threshold(stage_a, out, w, h, cut);
}
int host() {
    int img[256];
    int out[256];
    for (int i = 0; i < 256; i++) {
        img[i] = (i * 31 + 7) % 256;
        out[i] = 0;
    }
    kernel(img, out, 16, 16, 128);
    return out[0];
}
)";
    s.manual_source = R"(
int clampv(int v, int lo, int hi) {
    if (v < lo) { return lo; }
    if (v > hi) { return hi; }
    return v;
}
int pix(int img[256], int w, int h, int x, int y) {
    int cx = clampv(x, 0, w - 1);
    int cy = clampv(y, 0, h - 1);
    return img[cy * 16 + cx];
}
void blur(int src[256], int dst[256], int w, int h) {
    int line_buf[16];
    for (int y = 0; y < h; y++) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=16
        for (int x = 0; x < w; x++) {
            #pragma HLS pipeline II=1
            #pragma HLS loop_tripcount max=16
            line_buf[x] = pix(src, w, h, x, y - 1);
        }
        for (int x = 0; x < w; x++) {
            #pragma HLS pipeline II=1
            #pragma HLS loop_tripcount max=16
            int acc = line_buf[x];
            acc = acc + pix(src, w, h, x - 1, y);
            acc = acc + pix(src, w, h, x, y);
            acc = acc + pix(src, w, h, x + 1, y);
            acc = acc + pix(src, w, h, x, y + 1);
            dst[y * 16 + x] = acc / 5;
        }
    }
}
void gradient(int src[256], int dst[256], int w, int h) {
    for (int y = 0; y < h; y++) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=16
        for (int x = 0; x < w; x++) {
            #pragma HLS pipeline II=1
            #pragma HLS loop_tripcount max=16
            int gx = pix(src, w, h, x + 1, y) - pix(src, w, h, x - 1, y);
            int gy = pix(src, w, h, x, y + 1) - pix(src, w, h, x, y - 1);
            int ax = gx;
            if (ax < 0) { ax = -ax; }
            int ay = gy;
            if (ay < 0) { ay = -ay; }
            dst[y * 16 + x] = ax + ay;
        }
    }
}
void median3(int src[256], int dst[256], int w, int h) {
    for (int y = 0; y < h; y++) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=16
        for (int x = 0; x < w; x++) {
            #pragma HLS pipeline II=1
            #pragma HLS loop_tripcount max=16
            int a = pix(src, w, h, x - 1, y);
            int b = pix(src, w, h, x, y);
            int c = pix(src, w, h, x + 1, y);
            int lo = a;
            if (b < lo) { lo = b; }
            if (c < lo) { lo = c; }
            int hi = a;
            if (b > hi) { hi = b; }
            if (c > hi) { hi = c; }
            dst[y * 16 + x] = a + b + c - lo - hi;
        }
    }
}
void dilate(int src[256], int dst[256], int w, int h) {
    for (int y = 0; y < h; y++) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=16
        for (int x = 0; x < w; x++) {
            #pragma HLS pipeline II=1
            #pragma HLS loop_tripcount max=16
            int best = pix(src, w, h, x, y);
            if (pix(src, w, h, x - 1, y) > best) {
                best = pix(src, w, h, x - 1, y);
            }
            if (pix(src, w, h, x + 1, y) > best) {
                best = pix(src, w, h, x + 1, y);
            }
            if (pix(src, w, h, x, y - 1) > best) {
                best = pix(src, w, h, x, y - 1);
            }
            if (pix(src, w, h, x, y + 1) > best) {
                best = pix(src, w, h, x, y + 1);
            }
            dst[y * 16 + x] = best;
        }
    }
}
void stretch(int src[256], int dst[256], int w, int h) {
    int lo = 255;
    int hi = 0;
    for (int y = 0; y < h; y++) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=16
        for (int x = 0; x < w; x++) {
            #pragma HLS pipeline II=1
            #pragma HLS loop_tripcount max=16
            int v = src[y * 16 + x];
            if (v < lo) { lo = v; }
            if (v > hi) { hi = v; }
        }
    }
    int span = hi - lo;
    if (span <= 0) { span = 1; }
    for (int y = 0; y < h; y++) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=16
        for (int x = 0; x < w; x++) {
            #pragma HLS pipeline II=1
            #pragma HLS loop_tripcount max=16
            int v = src[y * 16 + x] - lo;
            dst[y * 16 + x] = v * 255 / span;
        }
    }
}
void threshold(int src[256], int dst[256], int w, int h, int cut) {
    for (int y = 0; y < h; y++) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=16
        for (int x = 0; x < w; x++) {
            #pragma HLS pipeline II=1
            #pragma HLS loop_tripcount max=16
            if (src[y * 16 + x] >= cut) {
                dst[y * 16 + x] = 255;
            } else {
                dst[y * 16 + x] = 0;
            }
        }
    }
}
int stage_a[256];
int stage_b[256];
void kernel(int img[256], int out[256], int w, int h, int cut) {
    if (w < 1) { w = 1; }
    if (w > 16) { w = 16; }
    if (h < 1) { h = 1; }
    if (h > 16) { h = 16; }
    if (cut < 0) { cut = 0; }
    if (cut > 255) { cut = 255; }
    blur(img, stage_a, w, h);
    gradient(stage_a, stage_b, w, h);
    median3(stage_b, stage_a, w, h);
    dilate(stage_a, stage_b, w, h);
    stretch(stage_b, stage_a, w, h);
    threshold(stage_a, out, w, h, cut);
}
)";
    return s;
}

Subject
makeP5()
{
    Subject s;
    s.id = "P5";
    s.name = "graph traversal";
    s.kernel = "kernel";
    s.host = "host";
    s.fuzz_seed = 105;
    // Binary-search-tree build (iterative, malloc) plus recursive
    // depth-first traversal — the paper's working example (Figure 2).
    s.source = R"(
struct Node {
    int val;
    Node *left;
    Node *right;
};
Node *root = 0;
int total = 0;
int visits = 0;
void insert(int v) {
    Node *fresh = (Node*)malloc(sizeof(Node));
    fresh->val = v;
    fresh->left = (Node*)0;
    fresh->right = (Node*)0;
    if (root == 0) {
        root = fresh;
        return;
    }
    Node *curr = root;
    while (1) {
        if (v < curr->val) {
            if (curr->left == 0) {
                curr->left = fresh;
                return;
            }
            curr = curr->left;
        } else {
            if (curr->right == 0) {
                curr->right = fresh;
                return;
            }
            curr = curr->right;
        }
    }
}
void traverse(Node *curr) {
    if (curr != 0) {
        visits = visits + 1;
        int ret = curr->val;
        total = total + ret * visits;
        traverse(curr->left);
        traverse(curr->right);
    }
}
int kernel(int vals[64], int n) {
    if (n < 0) { n = 0; }
    if (n > 64) { n = 64; }
    root = (Node*)0;
    total = 0;
    visits = 0;
    for (int i = 0; i < n; i++) {
        insert(vals[i]);
    }
    traverse(root);
    long double normalized = total * 1.0L;
    return normalized;
}
int host() {
    int vals[64];
    for (int i = 0; i < 64; i++) {
        vals[i] = (i * 53 + 11) % 97;
    }
    return kernel(vals, 64);
}
)";
    // Manual port: array-backed tree plus a hand-written explicit stack.
    s.manual_source = R"(
int tree_val[4096];
int tree_left[4096];
int tree_right[4096];
int tree_top = 1;
int root = 0;
int total = 0;
int visits = 0;
int node_alloc(int v) {
    int idx = 0;
    if (tree_top < 4096) {
        idx = tree_top;
        tree_top = tree_top + 1;
        tree_val[idx] = v;
        tree_left[idx] = 0;
        tree_right[idx] = 0;
    }
    return idx;
}
void insert(int v) {
    int fresh = node_alloc(v);
    if (root == 0) {
        root = fresh;
        return;
    }
    int curr = root;
    while (1) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=64
        if (v < tree_val[curr]) {
            if (tree_left[curr] == 0) {
                tree_left[curr] = fresh;
                return;
            }
            curr = tree_left[curr];
        } else {
            if (tree_right[curr] == 0) {
                tree_right[curr] = fresh;
                return;
            }
            curr = tree_right[curr];
        }
    }
}
int dfs_stack[4096];
void traverse(int start) {
    int sp = 0;
    dfs_stack[sp] = start;
    sp = sp + 1;
    while (sp > 0) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=128
        sp = sp - 1;
        int curr = dfs_stack[sp];
        if (curr != 0) {
            visits = visits + 1;
            fpga_uint<7> ret = tree_val[curr];
            total = total + ret * visits;
            if (sp < 4095) {
                dfs_stack[sp] = tree_right[curr];
                sp = sp + 1;
            }
            if (sp < 4095) {
                dfs_stack[sp] = tree_left[curr];
                sp = sp + 1;
            }
        }
    }
}
int kernel(int vals[64], int n) {
    if (n < 0) { n = 0; }
    if (n > 64) { n = 64; }
    tree_top = 1;
    root = 0;
    total = 0;
    visits = 0;
    for (int i = 0; i < n; i++) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount max=64
        insert(vals[i]);
    }
    traverse(root);
    fpga_float<8,52> normalized = (fpga_float<8,52>)total * (fpga_float<8,52>)1.0;
    return normalized;
}
)";
    // Pre-existing tests: a handful of tiny fixed trees (Table 4: 10
    // tests, 40% coverage).
    for (int t = 0; t < 10; ++t) {
        std::vector<long> vals(64, 0);
        vals[0] = 50;
        vals[1] = 50 + t;
        s.existing_tests.push_back(
            {KernelArg::ofInts(vals), KernelArg::ofInt(2)});
    }
    return s;
}

} // namespace detail

} // namespace heterogen::subjects
