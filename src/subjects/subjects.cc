#include "subjects/subjects.h"

#include "subjects/subjects_detail.h"
#include "support/diagnostics.h"

namespace heterogen::subjects {

const std::vector<Subject> &
allSubjects()
{
    static const std::vector<Subject> subjects = [] {
        std::vector<Subject> out;
        out.push_back(detail::makeP1());
        out.push_back(detail::makeP2());
        out.push_back(detail::makeP3());
        out.push_back(detail::makeP4());
        out.push_back(detail::makeP5());
        out.push_back(detail::makeP6());
        out.push_back(detail::makeP7());
        out.push_back(detail::makeP8());
        out.push_back(detail::makeP9());
        out.push_back(detail::makeP10());
        return out;
    }();
    return subjects;
}

const std::vector<Subject> &
streamingSubjects()
{
    static const std::vector<Subject> subjects = [] {
        std::vector<Subject> out;
        out.push_back(detail::makeS1());
        out.push_back(detail::makeS2());
        out.push_back(detail::makeS3());
        out.push_back(detail::makeS4());
        return out;
    }();
    return subjects;
}

const Subject &
subjectById(const std::string &id)
{
    for (const Subject &s : allSubjects()) {
        if (s.id == id)
            return s;
    }
    for (const Subject &s : streamingSubjects()) {
        if (s.id == id)
            return s;
    }
    fatal("unknown subject id: ", id);
}

} // namespace heterogen::subjects
