/**
 * @file
 * The evaluation subjects P1-P10 (Table 3).
 *
 * Eight microbenchmarks drawn from HeteroRefactor-style workloads and
 * Xilinx-forum scenarios plus two Rosetta-style applications, re-authored
 * in the CIR C subset at sizes comparable to the paper's. Each subject
 * carries: the original C program, its kernel and host entry points, a
 * hand-written "manual" HLS-C port (Table 5's Manual column), an optional
 * intentionally-wrong initial top-function name (Top Function errors),
 * and the pre-existing test inputs the paper reports for Table 4.
 */

#ifndef HETEROGEN_SUBJECTS_SUBJECTS_H
#define HETEROGEN_SUBJECTS_SUBJECTS_H

#include <string>
#include <vector>

#include "interp/kernel_arg.h"

namespace heterogen::subjects {

/** One evaluation subject. */
struct Subject
{
    std::string id;     ///< "P1".."P10"
    std::string name;   ///< e.g. "merge sort"
    std::string source; ///< original C program (CIR subset)
    std::string kernel; ///< kernel function name
    std::string host;   ///< host entry for seed capture ("" = none)
    /** Initial top-function configuration; "" = correct (the kernel). */
    std::string initial_top;
    /** Hand-written HLS-C port (the paper's Manual column). */
    std::string manual_source;
    /** Pre-existing handcrafted tests (empty = N/A in Table 4). */
    std::vector<std::vector<interp::KernelArg>> existing_tests;
    /** Deterministic fuzzing seed so experiments replay. */
    uint64_t fuzz_seed = 1;
};

/** All ten subjects in order. */
const std::vector<Subject> &allSubjects();

/**
 * The streaming/dataflow workload class S1-S4: producer/consumer
 * chain, tiled GEMM, 2D stencil, and an FFT-like butterfly. Each hangs
 * in (modeled) hardware while simulating cleanly in software; kept out
 * of allSubjects() so the Table 3-5 experiment set is untouched.
 */
const std::vector<Subject> &streamingSubjects();

/** Lookup by id ("P3", "S1"); fatal on unknown id. */
const Subject &subjectById(const std::string &id);

} // namespace heterogen::subjects

#endif // HETEROGEN_SUBJECTS_SUBJECTS_H
