/** @file Behavioural tests of the repair search: fitness-driven
 * reverts, fallback edits, ablation switches, accounting. */

#include <gtest/gtest.h>

#include "cir/parser.h"
#include "cir/printer.h"
#include "cir/sema.h"
#include "core/heterogen.h"
#include "hls/synth_check.h"
#include "repair/search.h"
#include "support/strings.h"

namespace heterogen::repair {
namespace {

using interp::KernelArg;

/** Convenience: run the full pipeline on source text. */
core::HeteroGenReport
runPipeline(const std::string &src, const std::string &kernel,
            const std::string &host = "",
            double budget_minutes = 400)
{
    core::HeteroGen engine(src);
    core::HeteroGenOptions opts;
    opts.kernel = kernel;
    opts.host_function = host;
    opts.fuzz.max_executions = 400;
    opts.fuzz.min_suite_size = 12;
    opts.search.budget_minutes = budget_minutes;
    opts.search.difftest_sample = 10;
    return engine.run(opts);
}

TEST(Search, SegmentEditRevertedWhenCalleeWritesSharedArray)
{
    // The dataflow-shared-array error has two fixes: duplicating the
    // buffer (keeps the pragma, but changes behaviour when the first
    // call WRITES the array) and deleting the pragma. Differential
    // testing must reject the first and the search must land on the
    // second.
    const char *src = R"(
        void bump(int data[16]) {
            for (int i = 0; i < 16; i++) { data[i] = data[i] + 1; }
        }
        int kernel(int seedv) {
            #pragma HLS dataflow
            int data[16];
            for (int i = 0; i < 16; i++) { data[i] = seedv + i; }
            bump(data);
            bump(data);
            int acc = 0;
            for (int i = 0; i < 16; i++) { acc += data[i]; }
            return acc;
        }
    )";
    auto report = runPipeline(src, "kernel");
    ASSERT_TRUE(report.ok())
        << join(report.search.applied_order, ", ");
    // The final program must still double-bump (behaviour preserved).
    auto final_errors = hls::checkSynthesizability(
        *report.search.program, report.search.config);
    EXPECT_TRUE(final_errors.empty());
    // A revert must appear in the trace: segment was tried and undone,
    // or never survived.
    std::string final_text = cir::print(*report.search.program);
    bool kept_seg = final_text.find("__seg") != std::string::npos;
    EXPECT_FALSE(kept_seg)
        << "the behaviour-changing duplicate must not survive:\n"
        << final_text;
}

TEST(Search, TraceRecordsActionsWithTimestamps)
{
    auto report = runPipeline(
        "int kernel(int x) { long double v = x; return v; }", "kernel");
    ASSERT_TRUE(report.ok());
    ASSERT_FALSE(report.search.trace.empty());
    double last = 0;
    bool saw_compile = false;
    bool saw_edit = false;
    for (const auto &step : report.search.trace) {
        EXPECT_GE(step.minutes_after, last);
        last = step.minutes_after;
        saw_compile |= startsWith(step.action, "compile:");
        saw_edit |= startsWith(step.action, "edit:");
    }
    EXPECT_TRUE(saw_compile);
    EXPECT_TRUE(saw_edit);
}

TEST(Search, MinutesToSuccessNeverExceedsTotal)
{
    auto report = runPipeline(
        "int kernel(int x) { long double v = x; return v; }", "kernel");
    ASSERT_TRUE(report.ok());
    EXPECT_LE(report.search.minutes_to_success,
              report.search.sim_minutes);
    EXPECT_GT(report.search.minutes_to_success, 0.0);
}

TEST(Search, BudgetBoundsSimulatedTime)
{
    // A budget smaller than two style checks stops the search before it
    // ever reaches a full compile, and failure is reported honestly.
    // (The budget is checked between iterations — a started synthesis
    // runs to completion, as in reality — so the bound here is loose.)
    const char *src = R"(
        struct Node { int val; Node *next; };
        int kernel(int n) {
            Node *p = (Node*)malloc(sizeof(Node));
            p->val = n;
            return p->val;
        }
    )";
    auto report = runPipeline(src, "kernel", "", 0.12);
    EXPECT_FALSE(report.search.hls_compatible);
    EXPECT_EQ(report.search.full_hls_invocations, 0);
    EXPECT_LE(report.search.sim_minutes, 1.0);
}

TEST(Search, AlreadyCleanProgramSucceedsImmediately)
{
    auto report = runPipeline(R"(
        int kernel(int a[16]) {
            int acc = 0;
            for (int i = 0; i < 16; i++) { acc += a[i]; }
            return acc;
        }
    )",
                              "kernel");
    ASSERT_TRUE(report.ok());
    // Only performance edits were needed.
    for (const auto &e : report.search.applied_order) {
        EXPECT_TRUE(contains(e, "pipeline") || contains(e, "unroll") ||
                    contains(e, "partition") || contains(e, "dataflow") ||
                    contains(e, "resize"))
            << e;
    }
}

TEST(Search, PassRatioReportedOnSuccess)
{
    auto report = runPipeline(
        "int kernel(int x) { long double v = x; return v + 1; }",
        "kernel");
    ASSERT_TRUE(report.ok());
    EXPECT_DOUBLE_EQ(report.search.pass_ratio, 1.0);
}

TEST(Search, AppliedOrderRespectsTypeChainDependence)
{
    auto report = runPipeline(
        "int kernel(int x) { long double v = x; v = v + 1; return v; }",
        "kernel");
    ASSERT_TRUE(report.ok());
    const auto &order = report.search.applied_order;
    auto pos = [&](const char *needle) {
        for (size_t i = 0; i < order.size(); ++i) {
            if (contains(order[i], needle))
                return int(i);
        }
        return -1;
    };
    int trans = pos("type_trans");
    int casting = pos("type_casting");
    ASSERT_GE(trans, 0) << join(order, ", ");
    ASSERT_GE(casting, 0) << join(order, ", ");
    EXPECT_LT(trans, casting)
        << "type_casting depends on type_trans (Figure 7c)";
}

} // namespace
} // namespace heterogen::repair
