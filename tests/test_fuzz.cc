/** @file Tests for test generation: mutation, suites, fuzzing loop. */

#include <gtest/gtest.h>

#include "cir/parser.h"
#include "cir/sema.h"
#include "fuzz/fuzzer.h"
#include "fuzz/mutator.h"
#include "fuzz/testsuite.h"

namespace heterogen::fuzz {
namespace {

using cir::Type;
using interp::KernelArg;

TEST(TestSuite, DeduplicatesIdenticalInputs)
{
    TestSuite suite;
    EXPECT_TRUE(suite.add({KernelArg::ofInt(1)}));
    EXPECT_FALSE(suite.add({KernelArg::ofInt(1)}));
    EXPECT_TRUE(suite.add({KernelArg::ofInt(2)}));
    EXPECT_EQ(suite.size(), 2u);
    EXPECT_EQ(suite[0].id, 0);
    EXPECT_EQ(suite[1].id, 1);
}

TEST(Mutator, RandomInputMatchesParamShapes)
{
    Rng rng(3);
    std::vector<cir::TypePtr> types{
        Type::array(Type::floatType(), 8),
        Type::intType(),
        Type::stream(Type::intType()),
    };
    Mutator mutator(types, rng);
    auto input = mutator.randomInput();
    ASSERT_EQ(input.size(), 3u);
    EXPECT_EQ(input[0].kind, KernelArg::Kind::FloatArray);
    EXPECT_EQ(input[0].floats.size(), 8u);
    EXPECT_EQ(input[1].kind, KernelArg::Kind::Int);
    EXPECT_EQ(input[2].kind, KernelArg::Kind::IntArray);
}

TEST(Mutator, MutantsDifferFromSeed)
{
    Rng rng(5);
    std::vector<cir::TypePtr> types{Type::array(Type::intType(), 16),
                                    Type::intType()};
    Mutator mutator(types, rng);
    std::vector<KernelArg> seed{
        KernelArg::ofInts(std::vector<long>(16, 7)),
        KernelArg::ofInt(3)};
    auto variants = mutator.mutate(seed, 32);
    ASSERT_EQ(variants.size(), 32u);
    int different = 0;
    for (const auto &v : variants)
        different += (v != seed) ? 1 : 0;
    EXPECT_GT(different, 24) << "mutation should usually change inputs";
}

class TypeValidityTest : public ::testing::TestWithParam<int>
{};

TEST_P(TypeValidityTest, MutantsStayInFpgaTypeRange)
{
    const int width = GetParam();
    Rng rng(7 + width);
    std::vector<cir::TypePtr> types{
        Type::array(Type::fpgaUint(width), 8),
        Type::fpgaInt(width),
    };
    Mutator mutator(types, rng);
    auto seed = mutator.randomInput();
    const long umax = (1L << width) - 1;
    const long smin = -(1L << (width - 1));
    const long smax = (1L << (width - 1)) - 1;
    for (int round = 0; round < 20; ++round) {
        auto variants = mutator.mutate(seed, 8);
        for (const auto &v : variants) {
            for (long x : v[0].ints) {
                EXPECT_GE(x, 0);
                EXPECT_LE(x, umax);
            }
            EXPECT_GE(v[1].i, smin);
            EXPECT_LE(v[1].i, smax);
        }
        seed = variants.back();
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, TypeValidityTest,
                         ::testing::Values(1, 3, 7, 12, 16));

TEST(Fuzzer, CoversBothBranchDirections)
{
    auto tu = cir::parse(R"(
        int kernel(int x) {
            if (x > 100) { return 1; }
            return 0;
        }
    )");
    auto sema = cir::analyzeOrDie(*tu);
    FuzzOptions options;
    options.max_executions = 400;
    options.rng_seed = 11;
    auto result = fuzzKernel(*tu, "kernel", sema, options);
    EXPECT_DOUBLE_EQ(result.branchCoverage(), 1.0);
    EXPECT_GE(result.suite.size(), 2u);
}

TEST(Fuzzer, SeedCapturedFromHostRun)
{
    auto tu = cir::parse(R"(
        int kernel(int a[4], int k) {
            int acc = 0;
            for (int i = 0; i < 4; i++) { acc += a[i] * k; }
            return acc;
        }
        int host() {
            int data[4];
            for (int i = 0; i < 4; i++) { data[i] = 10 + i; }
            return kernel(data, 3);
        }
    )");
    auto sema = cir::analyzeOrDie(*tu);
    FuzzOptions options;
    options.host_function = "host";
    options.max_executions = 10;
    auto result = fuzzKernel(*tu, "kernel", sema, options);
    ASSERT_FALSE(result.suite.empty());
    // The first retained test is the captured host seed.
    EXPECT_EQ(result.suite[0].args[0].ints,
              (std::vector<long>{10, 11, 12, 13}));
    EXPECT_EQ(result.suite[0].args[1].i, 3);
}

TEST(Fuzzer, CoverageCountsKernelReachableBranchesOnly)
{
    // The host has its own branches; they must not deflate kernel
    // coverage.
    auto tu = cir::parse(R"(
        int kernel(int x) {
            if (x > 0) { return 1; }
            return 0;
        }
        int host() {
            int acc = 0;
            for (int i = 0; i < 3; i++) {
                if (i % 2 == 0) { acc += kernel(i); }
            }
            return acc;
        }
    )");
    auto sema = cir::analyzeOrDie(*tu);
    FuzzOptions options;
    options.host_function = "host";
    options.max_executions = 300;
    options.rng_seed = 3;
    auto result = fuzzKernel(*tu, "kernel", sema, options);
    EXPECT_DOUBLE_EQ(result.branchCoverage(), 1.0)
        << "only the kernel's single branch should count";
}

TEST(Fuzzer, PlateauStopsCampaign)
{
    // Branchless kernel: after the seed there is never new coverage, so
    // the campaign stops once the plateau window elapses.
    auto tu = cir::parse("int kernel(int x) { return x + 1; }");
    auto sema = cir::analyzeOrDie(*tu);
    FuzzOptions options;
    options.max_executions = 1000000;
    options.plateau_minutes = 2.0;
    options.budget_minutes = 1000.0;
    auto result = fuzzKernel(*tu, "kernel", sema, options);
    EXPECT_LT(result.executions, 10000);
    EXPECT_GT(result.sim_minutes, 2.0);
    EXPECT_LT(result.sim_minutes - result.last_progress_minutes, 3.5);
}

TEST(Fuzzer, DeterministicGivenSeed)
{
    auto tu = cir::parse(R"(
        int kernel(int a[8], int n) {
            if (n < 0) { n = 0; }
            if (n > 8) { n = 8; }
            int acc = 0;
            for (int i = 0; i < n; i++) { acc += a[i]; }
            return acc;
        }
    )");
    auto sema = cir::analyzeOrDie(*tu);
    FuzzOptions options;
    options.max_executions = 200;
    options.rng_seed = 99;
    auto a = fuzzKernel(*tu, "kernel", sema, options);
    auto b = fuzzKernel(*tu, "kernel", sema, options);
    EXPECT_EQ(a.suite.size(), b.suite.size());
    EXPECT_EQ(a.executions, b.executions);
    for (size_t i = 0; i < a.suite.size(); ++i)
        EXPECT_EQ(a.suite[i].args, b.suite[i].args);
}

TEST(Fuzzer, MinSuiteFloorRetainsDiverseInputs)
{
    auto tu = cir::parse("int kernel(int x) { return x * 2; }");
    auto sema = cir::analyzeOrDie(*tu);
    FuzzOptions options;
    options.max_executions = 300;
    options.min_suite_size = 24;
    options.plateau_minutes = 1000.0;
    auto result = fuzzKernel(*tu, "kernel", sema, options);
    EXPECT_GE(result.suite.size(), 24u)
        << "branchless programs still get a difftest corpus";
}

TEST(Fuzzer, HitCountBucketsRetainLoopMagnitudes)
{
    // Same edges for any n>0; only iteration-count buckets distinguish
    // inputs, so the suite should grow beyond the two edge classes.
    auto tu = cir::parse(R"(
        int kernel(int n) {
            if (n < 0) { n = 0; }
            if (n > 100000) { n = 100000; }
            int acc = 0;
            for (int i = 0; i < n; i++) { acc += i; }
            return acc;
        }
    )");
    auto sema = cir::analyzeOrDie(*tu);
    FuzzOptions options;
    options.max_executions = 2000;
    options.min_suite_size = 0;
    options.rng_seed = 17;
    auto result = fuzzKernel(*tu, "kernel", sema, options);
    EXPECT_GT(result.suite.size(), 6u)
        << "hit-count bucketing should retain multiple loop magnitudes";
}

} // namespace
} // namespace heterogen::fuzz
