/** @file Thread-count invariance of the parallel evaluation layers.
 *
 * The worker pool must be an execution detail only: for any fixed seed,
 * differential testing and fuzzing produce byte-identical outcomes at 1,
 * 2 and 8 host threads. These are the determinism properties the repair
 * search's reproducibility (golden traces, replayable experiments)
 * rests on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>

#include "cir/parser.h"
#include "cir/sema.h"
#include "fuzz/fuzzer.h"
#include "repair/difftest.h"
#include "support/run_context.h"
#include "support/worker_pool.h"

namespace heterogen {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

cir::TuPtr
program(const std::string &src)
{
    auto tu = cir::parse(src);
    cir::analyzeOrDie(*tu);
    return tu;
}

fuzz::FuzzResult
runFuzz(cir::TranslationUnit &tu, const fuzz::FuzzOptions &options)
{
    cir::SemaResult sema = cir::analyzeOrDie(tu);
    return fuzz::fuzzKernel(tu, "kernel", sema, options);
}

// --- worker pool ---------------------------------------------------------

TEST(WorkerPool, RunsEverySubmittedJob)
{
    WorkerPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { count += 1; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(WorkerPool, BoundedQueueBlocksWithoutDeadlock)
{
    // Queue of 2 with 50 jobs: submit() must block-and-drain, never
    // drop or deadlock.
    WorkerPool pool(2, 2);
    std::atomic<int> count{0};
    for (int i = 0; i < 50; ++i)
        pool.submit([&count] { count += 1; });
    pool.wait();
    EXPECT_EQ(count.load(), 50);
}

TEST(WorkerPool, WaitIsReusableAcrossBatches)
{
    WorkerPool pool(3);
    std::atomic<int> count{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { count += 1; });
        pool.wait();
        EXPECT_EQ(count.load(), (round + 1) * 10);
    }
}

TEST(ParallelForEach, VisitsEachIndexExactlyOnce)
{
    for (int threads : kThreadCounts) {
        WorkerPool pool(threads);
        std::vector<int> visits(257, 0);
        parallelForEach(&pool, visits.size(),
                        [&](size_t i) { visits[i] += 1; });
        EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 257);
        for (int v : visits)
            EXPECT_EQ(v, 1);
    }
}

TEST(ParallelForEach, NullPoolRunsInline)
{
    std::vector<int> visits(10, 0);
    parallelForEach(nullptr, visits.size(),
                    [&](size_t i) { visits[i] += 1; });
    for (int v : visits)
        EXPECT_EQ(v, 1);
}

TEST(ParallelForEach, RethrowsLowestIndexException)
{
    WorkerPool pool(4);
    try {
        parallelForEach(&pool, 16, [&](size_t i) {
            if (i == 3 || i == 11)
                throw std::runtime_error("boom " + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom 3");
    }
}

TEST(ResolveJobs, ExplicitRequestWinsOverEnvironment)
{
    EXPECT_EQ(resolveJobs(3), 3);
    EXPECT_EQ(resolveJobs(1), 1);
}

TEST(ResolveJobs, ReadsHeterogenJobsEnvironment)
{
    setenv("HETEROGEN_JOBS", "5", 1);
    EXPECT_EQ(resolveJobs(0), 5);
    setenv("HETEROGEN_JOBS", "not-a-number", 1);
    EXPECT_GE(resolveJobs(0), 1); // falls back to hardware default
    unsetenv("HETEROGEN_JOBS");
    EXPECT_GE(resolveJobs(0), 1);
}

// --- difftest invariance -------------------------------------------------

const char *kOriginal = R"(
    int kernel(int a[8], int n) {
        int acc = 0;
        for (int i = 0; i < 8; i++) {
            if (a[i] > 64) { acc += a[i] * 2; }
            else if (a[i] < -10) { acc -= a[i]; }
            else { acc += i; }
        }
        int j = 0;
        while (j < n % 7) { acc += j * j; j++; }
        return acc;
    }
)";

/** Same kernel, diverging for a[i] > 100 — some tests fail, some pass. */
const char *kDivergent = R"(
    int kernel(int a[8], int n) {
        int acc = 0;
        for (int i = 0; i < 8; i++) {
            if (a[i] > 100) { acc += a[i] * 2 + 1; }
            else if (a[i] > 64) { acc += a[i] * 2; }
            else if (a[i] < -10) { acc -= a[i]; }
            else { acc += i; }
        }
        int j = 0;
        while (j < n % 7) { acc += j * j; j++; }
        return acc;
    }
)";

/** A deterministic suite seeded from one fuzzing campaign. */
fuzz::TestSuite
suiteForSeed(cir::TranslationUnit &tu, uint64_t seed)
{
    fuzz::FuzzOptions options;
    options.rng_seed = seed;
    options.max_executions = 120;
    options.mutations_per_input = 8;
    options.min_suite_size = 24;
    options.max_steps_per_run = 100000;
    options.threads = 1;
    return runFuzz(tu, options).suite;
}

void
expectSameDiffTest(const repair::DiffTestResult &a,
                   const repair::DiffTestResult &b)
{
    EXPECT_EQ(a.total, b.total);
    EXPECT_EQ(a.identical, b.identical);
    EXPECT_EQ(a.failing, b.failing);
    // Exact binary equality: the reduce happens serially in input
    // order, so even float accumulation cannot differ.
    EXPECT_EQ(a.cpu_millis, b.cpu_millis);
    EXPECT_EQ(a.fpga_millis, b.fpga_millis);
    EXPECT_EQ(a.sim_minutes, b.sim_minutes);
}

TEST(ParallelDiffTest, ByteIdenticalAcrossThreadCounts)
{
    auto orig = program(kOriginal);
    auto cand = program(kDivergent);
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    int seeds_with_agreement = 0;
    int seeds_with_divergence = 0;
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        fuzz::TestSuite suite = suiteForSeed(*orig, seed);
        ASSERT_GE(suite.size(), 8u) << "seed " << seed;

        repair::DiffTestOptions serial_opts;
        auto serial = repair::diffTest(*orig, "kernel", *cand, config, suite,
                               serial_opts);
        seeds_with_agreement += serial.identical > 0 ? 1 : 0;
        seeds_with_divergence += serial.failing.empty() ? 0 : 1;

        for (int threads : kThreadCounts) {
            WorkerPool pool(threads);
            repair::DiffTestOptions opts;
            opts.pool = &pool;
            auto parallel = repair::diffTest(*orig, "kernel", *cand, config,
                                     suite, opts);
            SCOPED_TRACE("seed " + std::to_string(seed) + " threads " +
                         std::to_string(threads));
            expectSameDiffTest(serial, parallel);
        }
    }
    // The property is only meaningful if the sweep saw both outcomes.
    EXPECT_GT(seeds_with_agreement, 0);
    EXPECT_GT(seeds_with_divergence, 0);
}

TEST(ParallelDiffTest, SimWorkersChangeOnlySimulatedCost)
{
    auto orig = program(kOriginal);
    auto cand = program(kDivergent);
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    fuzz::TestSuite suite = suiteForSeed(*orig, 3);

    auto serial = repair::diffTest(*orig, "kernel", *cand, config, suite);
    repair::DiffTestOptions opts;
    opts.sim_workers = 4;
    auto fleet = repair::diffTest(*orig, "kernel", *cand, config, suite, opts);

    EXPECT_EQ(serial.identical, fleet.identical);
    EXPECT_EQ(serial.failing, fleet.failing);
    EXPECT_EQ(serial.cpu_millis, fleet.cpu_millis);
    EXPECT_EQ(serial.fpga_millis, fleet.fpga_millis);
    EXPECT_LT(fleet.sim_minutes, serial.sim_minutes)
        << "four modeled co-sim sessions must beat one";
}

// --- fuzzing invariance --------------------------------------------------

void
expectSameFuzz(const fuzz::FuzzResult &a, const fuzz::FuzzResult &b)
{
    EXPECT_EQ(a.executions, b.executions);
    EXPECT_EQ(a.sim_minutes, b.sim_minutes);
    EXPECT_EQ(a.last_progress_minutes, b.last_progress_minutes);
    EXPECT_EQ(a.coverage.hitCount(), b.coverage.hitCount());
    EXPECT_EQ(a.coverage.coverage(), b.coverage.coverage());
    ASSERT_EQ(a.suite.size(), b.suite.size());
    for (size_t i = 0; i < a.suite.size(); ++i) {
        EXPECT_EQ(a.suite[i].args, b.suite[i].args)
            << "corpus diverged at index " << i;
    }
}

TEST(ParallelFuzz, SameCorpusAndCoverageAcrossThreadCounts)
{
    auto tu = program(kOriginal);
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        fuzz::FuzzOptions options;
        options.rng_seed = seed;
        options.max_executions = 150;
        options.mutations_per_input = 8;
        options.min_suite_size = 16;
        options.max_steps_per_run = 100000;

        options.threads = 1;
        auto serial = runFuzz(*tu, options);
        ASSERT_GT(serial.executions, 0);

        for (int threads : kThreadCounts) {
            options.threads = threads;
            auto parallel = runFuzz(*tu, options);
            SCOPED_TRACE("seed " + std::to_string(seed) + " threads " +
                         std::to_string(threads));
            expectSameFuzz(serial, parallel);
        }
    }
}

// --- trace invariance ----------------------------------------------------

/**
 * The RunContext trace must be as thread-count invariant as the results
 * it observes: charges happen on the driving thread in input order, and
 * counters are integer sums, so the whole span tree — minutes bit for
 * bit, counters, nesting — serializes identically at 1, 2 and 8 host
 * threads.
 */
TEST(ParallelTrace, FuzzTraceJsonIdenticalAcrossThreadCounts)
{
    auto tu = program(kOriginal);
    cir::SemaResult sema = cir::analyzeOrDie(*tu);
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        fuzz::FuzzOptions options;
        options.rng_seed = seed;
        options.max_executions = 150;
        options.mutations_per_input = 8;
        options.min_suite_size = 16;
        options.max_steps_per_run = 100000;

        options.threads = 1;
        RunContext serial_ctx;
        fuzz::fuzzKernel(serial_ctx, *tu, "kernel", sema, options);
        std::string serial_json = serial_ctx.traceJson();

        for (int threads : kThreadCounts) {
            options.threads = threads;
            RunContext ctx;
            fuzz::fuzzKernel(ctx, *tu, "kernel", sema, options);
            SCOPED_TRACE("seed " + std::to_string(seed) + " threads " +
                         std::to_string(threads));
            EXPECT_EQ(ctx.traceJson(), serial_json);
        }
    }
}

TEST(ParallelTrace, DiffTestTraceJsonIdenticalAcrossThreadCounts)
{
    auto orig = program(kOriginal);
    auto cand = program(kDivergent);
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        fuzz::TestSuite suite = suiteForSeed(*orig, seed);

        RunContext serial_ctx;
        repair::diffTest(serial_ctx, *orig, "kernel", *cand, config,
                         suite, repair::DiffTestOptions{});
        std::string serial_json = serial_ctx.traceJson();

        for (int threads : kThreadCounts) {
            WorkerPool pool(threads);
            repair::DiffTestOptions opts;
            opts.pool = &pool;
            RunContext ctx;
            repair::diffTest(ctx, *orig, "kernel", *cand, config, suite,
                             opts);
            SCOPED_TRACE("seed " + std::to_string(seed) + " threads " +
                         std::to_string(threads));
            EXPECT_EQ(ctx.traceJson(), serial_json);
        }
    }
}

} // namespace
} // namespace heterogen
