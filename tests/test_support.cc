/** @file Unit tests for the support library. */

#include <gtest/gtest.h>

#include <set>

#include "support/diagnostics.h"
#include "support/rng.h"
#include "support/strings.h"

namespace heterogen {
namespace {

TEST(Strings, ContainsAndCase)
{
    EXPECT_TRUE(contains("recursive functions are not supported",
                         "recursive"));
    EXPECT_FALSE(contains("abc", "abd"));
    EXPECT_TRUE(containsIgnoreCase("ERROR: Dataflow", "dataflow"));
    EXPECT_TRUE(containsIgnoreCase("StRuCt", "struct"));
}

TEST(Strings, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("#pragma HLS unroll", "#pragma"));
    EXPECT_FALSE(startsWith("x#pragma", "#pragma"));
    EXPECT_TRUE(endsWith("kernel.c", ".c"));
    EXPECT_FALSE(endsWith(".c", "kernel.c"));
}

TEST(Strings, SplitKeepsEmptyFields)
{
    auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitTrailingDelimiter)
{
    auto parts = split("a,b,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[2], "");
}

TEST(Strings, TrimAndLower)
{
    EXPECT_EQ(trim("  x y \t\n"), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(toLower("HLS Unroll"), "hls unroll");
}

TEST(Strings, JoinAndCountLines)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(countLines(""), 0);
    EXPECT_EQ(countLines("one"), 1);
    EXPECT_EQ(countLines("one\ntwo\n"), 2);
    EXPECT_EQ(countLines("one\ntwo\nthree"), 3);
}

TEST(Diagnostics, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad thing: ", 42), FatalError);
    try {
        fatal("value=", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=7");
    }
}

TEST(Diagnostics, SourceLocFormatting)
{
    SourceLoc loc{12, 5};
    EXPECT_EQ(loc.str(), "12:5");
    EXPECT_TRUE(loc.valid());
    EXPECT_FALSE(SourceLoc{}.valid());
    EXPECT_EQ(SourceLoc{}.str(), "<unknown>");
}

TEST(Rng, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        int64_t v = r.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u) << "all values of a small range reachable";
}

TEST(Rng, UnitInHalfOpenInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        double u = r.unit();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r(13);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    r.shuffle(v);
    std::multiset<int> a(v.begin(), v.end());
    std::multiset<int> b(orig.begin(), orig.end());
    EXPECT_EQ(a, b);
}

class RngChanceTest : public ::testing::TestWithParam<double>
{};

TEST_P(RngChanceTest, EmpiricalRateTracksProbability)
{
    const double p = GetParam();
    Rng r(101);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(p) ? 1 : 0;
    double rate = static_cast<double>(hits) / n;
    EXPECT_NEAR(rate, p, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, RngChanceTest,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           1.0));

} // namespace
} // namespace heterogen
