/** @file Tests for the simulated HLS toolchain: checks, model, resources. */

#include <gtest/gtest.h>

#include "cir/parser.h"
#include "cir/sema.h"
#include "hls/compiler.h"
#include "hls/synth_check.h"

namespace heterogen::hls {
namespace {

using cir::parse;
using interp::KernelArg;

std::vector<HlsError>
check(const std::string &src, const std::string &top)
{
    auto tu = parse(src);
    cir::analyzeOrDie(*tu);
    return checkSynthesizability(*tu, HlsConfig::forTop(top));
}

bool
hasCategory(const std::vector<HlsError> &errors, ErrorCategory category)
{
    for (const auto &e : errors) {
        if (e.category == category)
            return true;
    }
    return false;
}

TEST(SynthCheck, CleanKernelPasses)
{
    auto errors = check(R"(
        int kernel(int a[16]) {
            int acc = 0;
            for (int i = 0; i < 16; i++) { acc += a[i]; }
            return acc;
        }
    )",
                        "kernel");
    EXPECT_TRUE(errors.empty());
}

TEST(SynthCheck, RecursionFlagged)
{
    auto errors = check(R"(
        int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        int kernel(int n) { return fact(n); }
    )",
                        "kernel");
    ASSERT_FALSE(errors.empty());
    EXPECT_TRUE(hasCategory(errors, ErrorCategory::DynamicDataStructures));
    EXPECT_NE(errors[0].str().find("recursive"), std::string::npos);
    EXPECT_NE(errors[0].str().find("XFORM 202-876"), std::string::npos);
}

TEST(SynthCheck, MutualRecursionFlagged)
{
    auto errors = check(R"(
        int g(int n) { if (n <= 0) { return 0; } return h(n - 1); }
        int h(int n) { return g(n); }
        int kernel(int n) { return g(n); }
    )",
                        "kernel");
    EXPECT_TRUE(hasCategory(errors, ErrorCategory::DynamicDataStructures));
}

TEST(SynthCheck, MallocFlagged)
{
    auto errors = check(R"(
        int kernel(int n) {
            int *p = (int*)malloc(n * sizeof(int));
            free(p);
            return 0;
        }
    )",
                        "kernel");
    EXPECT_TRUE(hasCategory(errors, ErrorCategory::DynamicDataStructures));
    bool saw_alloc = false;
    for (const auto &e : errors)
        saw_alloc |= e.message.find("dynamic memory") != std::string::npos;
    EXPECT_TRUE(saw_alloc);
}

TEST(SynthCheck, VlaFlagged)
{
    auto errors = check(R"(
        int kernel(int cols) {
            int line_buf[cols];
            line_buf[0] = 1;
            return line_buf[0];
        }
    )",
                        "kernel");
    EXPECT_TRUE(hasCategory(errors, ErrorCategory::DynamicDataStructures));
    bool saw = false;
    for (const auto &e : errors)
        saw |= e.message.find("unknown size") != std::string::npos;
    EXPECT_TRUE(saw);
}

TEST(SynthCheck, UnsizedTopArrayParamFlagged)
{
    auto errors = check("int kernel(float input[]) { return 0; }",
                        "kernel");
    EXPECT_TRUE(hasCategory(errors, ErrorCategory::DynamicDataStructures));
}

TEST(SynthCheck, LongDoubleFlagged)
{
    auto errors = check(R"(
        int kernel(int in) {
            long double in_ld = in;
            in_ld = in_ld + 1;
            return in_ld;
        }
    )",
                        "kernel");
    EXPECT_TRUE(hasCategory(errors, ErrorCategory::UnsupportedDataTypes));
}

TEST(SynthCheck, LongDoubleIntoPowIsAmbiguous)
{
    auto errors = check(R"(
        double kernel(int x) {
            long double v = x;
            return pow(v, 2.0);
        }
    )",
                        "kernel");
    bool saw = false;
    for (const auto &e : errors)
        saw |= e.message.find("ambiguous") != std::string::npos;
    EXPECT_TRUE(saw);
}

TEST(SynthCheck, PointersFlagged)
{
    auto errors = check(R"(
        struct Node { int val; Node *next; };
        int kernel(int x) {
            Node n;
            n.val = x;
            Node *p = &n;
            return p->val;
        }
    )",
                        "kernel");
    EXPECT_TRUE(hasCategory(errors, ErrorCategory::UnsupportedDataTypes));
}

TEST(SynthCheck, FpgaFloatMixingNeedsCast)
{
    auto errors = check(R"(
        int kernel(int in) {
            fpga_float<8,23> v = in;
            v = v + 1;
            return v;
        }
    )",
                        "kernel");
    EXPECT_TRUE(hasCategory(errors, ErrorCategory::UnsupportedDataTypes));
    auto fixed = check(R"(
        int kernel(int in) {
            fpga_float<8,23> v = in;
            v = v + (fpga_float<8,23>)1;
            return v;
        }
    )",
                       "kernel");
    EXPECT_FALSE(hasCategory(fixed, ErrorCategory::UnsupportedDataTypes));
}

TEST(SynthCheck, DataflowSharedArrayArgument)
{
    auto errors = check(R"(
        void my_func(char data[128]) { data[0] = 1; }
        void kernel() {
            #pragma HLS dataflow
            char data[128];
            my_func(data);
            my_func(data);
        }
    )",
                        "kernel");
    EXPECT_TRUE(hasCategory(errors, ErrorCategory::DataflowOptimization));
    bool saw = false;
    for (const auto &e : errors)
        saw |= e.message.find("failed dataflow checking") !=
               std::string::npos;
    EXPECT_TRUE(saw);
}

TEST(SynthCheck, ArrayPartitionFactorMustDivide)
{
    auto errors = check(R"(
        int A[13];
        int kernel() {
            int acc = 0;
            for (int i = 0; i < 13; i++) {
                #pragma HLS array_partition variable=A factor=4
                acc += A[i];
            }
            return acc;
        }
    )",
                        "kernel");
    EXPECT_TRUE(hasCategory(errors, ErrorCategory::DataflowOptimization));
    auto fixed = check(R"(
        int A[16];
        int kernel() {
            int acc = 0;
            for (int i = 0; i < 16; i++) {
                #pragma HLS array_partition variable=A factor=4
                acc += A[i];
            }
            return acc;
        }
    )",
                       "kernel");
    EXPECT_TRUE(fixed.empty());
}

TEST(SynthCheck, UnrollDataflowInteraction)
{
    auto errors = check(R"(
        void kernel(int a[64]) {
            #pragma HLS dataflow
            for (int i = 0; i < 64; i++) {
                #pragma HLS unroll factor=50
                a[i] = a[i] * 2;
            }
        }
    )",
                        "kernel");
    EXPECT_TRUE(hasCategory(errors, ErrorCategory::LoopParallelization));
    bool saw = false;
    for (const auto &e : errors)
        saw |= e.message.find("Pre-synthesis failed") != std::string::npos;
    EXPECT_TRUE(saw);
    // Smaller factor passes.
    auto fixed = check(R"(
        void kernel(int a[64]) {
            #pragma HLS dataflow
            for (int i = 0; i < 64; i++) {
                #pragma HLS unroll factor=8
                a[i] = a[i] * 2;
            }
        }
    )",
                       "kernel");
    EXPECT_FALSE(hasCategory(fixed, ErrorCategory::LoopParallelization));
}

TEST(SynthCheck, VariableTripCountUnroll)
{
    auto errors = check(R"(
        void kernel(int a[64], int n) {
            for (int i = 0; i < n; i++) {
                #pragma HLS unroll factor=4
                a[i] = a[i] * 2;
            }
        }
    )",
                        "kernel");
    EXPECT_TRUE(hasCategory(errors, ErrorCategory::LoopParallelization));
    // A loop_tripcount pragma makes it acceptable.
    auto fixed = check(R"(
        void kernel(int a[64], int n) {
            for (int i = 0; i < n; i++) {
                #pragma HLS loop_tripcount max=64
                #pragma HLS unroll factor=4
                a[i] = a[i] * 2;
            }
        }
    )",
                       "kernel");
    EXPECT_FALSE(hasCategory(fixed, ErrorCategory::LoopParallelization));
}

TEST(SynthCheck, StructWithoutCtorFlagged)
{
    auto errors = check(R"(
        struct If2 {
            hls::stream<int> &in;
            hls::stream<int> &out;
            int do1() { out.write(in.read()); return 0; }
        };
        void kernel(hls::stream<int> &in, hls::stream<int> &out) {
            #pragma HLS dataflow
            hls::stream<int> tmp;
            If2{ in, tmp }.do1();
            If2{ tmp, out }.do1();
        }
    )",
                        "kernel");
    EXPECT_TRUE(hasCategory(errors, ErrorCategory::StructAndUnion));
}

TEST(SynthCheck, NonStaticConnectingStreamFlagged)
{
    auto errors = check(R"(
        struct If2 {
            hls::stream<int> &in;
            hls::stream<int> &out;
            If2(hls::stream<int> &i, hls::stream<int> &o) : in(i), out(o) {}
            int do1() { out.write(in.read()); return 0; }
        };
        void kernel(hls::stream<int> &in, hls::stream<int> &out) {
            #pragma HLS dataflow
            hls::stream<int> tmp;
            If2{ in, tmp }.do1();
            If2{ tmp, out }.do1();
        }
    )",
                        "kernel");
    EXPECT_TRUE(hasCategory(errors, ErrorCategory::StructAndUnion));
    bool saw = false;
    for (const auto &e : errors)
        saw |= e.message.find("must be static") != std::string::npos;
    EXPECT_TRUE(saw);
    // Paper's repaired form: ctor + static stream -> clean.
    auto fixed = check(R"(
        struct If2 {
            hls::stream<int> &in;
            hls::stream<int> &out;
            If2(hls::stream<int> &i, hls::stream<int> &o) : in(i), out(o) {}
            int do1() { out.write(in.read()); return 0; }
        };
        void kernel(hls::stream<int> &in, hls::stream<int> &out) {
            #pragma HLS dataflow
            static hls::stream<int> tmp;
            If2{ in, tmp }.do1();
            If2{ tmp, out }.do1();
        }
    )",
                       "kernel");
    EXPECT_FALSE(hasCategory(fixed, ErrorCategory::StructAndUnion));
}

TEST(SynthCheck, UnionFlagged)
{
    auto errors = check(R"(
        union Both { int i; float f; };
        int kernel(int x) { return x; }
    )",
                        "kernel");
    EXPECT_TRUE(hasCategory(errors, ErrorCategory::StructAndUnion));
}

TEST(SynthCheck, MissingTopFunction)
{
    auto errors = check("int f(int x) { return x; }", "kernel_top");
    EXPECT_TRUE(hasCategory(errors, ErrorCategory::TopFunction));
    bool saw = false;
    for (const auto &e : errors)
        saw |= e.message.find("Cannot find the top function") !=
               std::string::npos;
    EXPECT_TRUE(saw);
}

TEST(SynthCheck, BadClockAndDevice)
{
    auto tu = parse("int kernel(int x) { return x; }");
    cir::analyzeOrDie(*tu);
    HlsConfig config = HlsConfig::forTop("kernel");
    config.clock_mhz = 9000;
    config.device = "not-a-part";
    auto errors = checkSynthesizability(*tu, config);
    EXPECT_EQ(errors.size(), 2u);
    EXPECT_TRUE(hasCategory(errors, ErrorCategory::TopFunction));
}

TEST(SynthCheck, InterfacePragmaPortMustExist)
{
    auto errors = check(R"(
        int kernel(int a[8]) {
            #pragma HLS interface port=missing
            return a[0];
        }
    )",
                        "kernel");
    EXPECT_TRUE(hasCategory(errors, ErrorCategory::TopFunction));
}

TEST(StaticTripCount, CanonicalForms)
{
    auto tu = parse(R"(
        void f(int a[64], int n) {
            for (int i = 0; i < 10; i++) { a[i] = 0; }
            for (int j = 2; j <= 10; j += 2) { a[j] = 0; }
            for (int k = 0; k < n; k++) { a[k] = 0; }
        }
    )");
    const auto &stmts = tu->functions[0]->body->stmts;
    auto count = [&](int idx) {
        return staticTripCount(
            static_cast<const cir::ForStmt &>(*stmts[idx]));
    };
    ASSERT_TRUE(count(0).has_value());
    EXPECT_EQ(*count(0), 10);
    ASSERT_TRUE(count(1).has_value());
    EXPECT_EQ(*count(1), 5);
    EXPECT_FALSE(count(2).has_value());
}

TEST(Toolchain, CompileChargesMinutes)
{
    auto tu = parse("int kernel(int x) { return x + 1; }");
    cir::analyzeOrDie(*tu);
    HlsToolchain tool(HlsConfig::forTop("kernel"));
    auto r = tool.compile(*tu);
    EXPECT_TRUE(r.ok);
    EXPECT_GT(r.synth_minutes, 1.0);
    EXPECT_EQ(tool.stats().compile_invocations, 1);
    EXPECT_GT(tool.stats().total_minutes, 0.0);
    tool.compile(*tu);
    EXPECT_EQ(tool.stats().compile_invocations, 2);
}

TEST(Toolchain, CosimMatchesInterpreterFunctionally)
{
    auto tu = parse(R"(
        int kernel(int a[8]) {
            int acc = 0;
            for (int i = 0; i < 8; i++) { acc += a[i]; }
            return acc;
        }
    )");
    cir::analyzeOrDie(*tu);
    HlsToolchain tool(HlsConfig::forTop("kernel"));
    auto r = tool.cosim(*tu, "kernel",
                        {KernelArg::ofInts({1, 2, 3, 4, 5, 6, 7, 8})});
    ASSERT_TRUE(r.run.ok) << r.run.trap;
    EXPECT_EQ(r.run.ret.i, 36);
    EXPECT_GT(r.millis, 0.0);
}

TEST(FpgaModel, UnoptimizedFpgaSlowerThanCpu)
{
    auto tu = parse(R"(
        int kernel(int a[256]) {
            int acc = 0;
            for (int i = 0; i < 256; i++) { acc += a[i] * 3; }
            return acc;
        }
    )");
    cir::analyzeOrDie(*tu);
    std::vector<KernelArg> args{KernelArg::ofInts(std::vector<long>(256, 2))};
    auto cpu = interp::runProgram(*tu, "kernel", args);
    auto fpga = simulateFpga(*tu, HlsConfig::forTop("kernel"), "kernel",
                             args);
    ASSERT_TRUE(cpu.ok);
    ASSERT_TRUE(fpga.run.ok);
    EXPECT_GT(fpga.millis, cpu.cpuMillis())
        << "without pragmas the 250 MHz fabric loses to the 2 GHz CPU";
}

TEST(FpgaModel, PipelineAndUnrollBeatCpu)
{
    auto plain = parse(R"(
        int kernel(int a[256]) {
            int acc = 0;
            for (int i = 0; i < 256; i++) { acc += a[i] * 3; }
            return acc;
        }
    )");
    auto tuned = parse(R"(
        int kernel(int a[256]) {
            #pragma HLS array_partition variable=a factor=8
            int acc = 0;
            for (int i = 0; i < 256; i++) {
                #pragma HLS pipeline II=1
                #pragma HLS unroll factor=8
                acc += a[i] * 3;
            }
            return acc;
        }
    )");
    cir::analyzeOrDie(*plain);
    cir::analyzeOrDie(*tuned);
    std::vector<KernelArg> args{KernelArg::ofInts(std::vector<long>(256, 2))};
    auto cpu = interp::runProgram(*plain, "kernel", args);
    auto slow = simulateFpga(*plain, HlsConfig::forTop("kernel"), "kernel",
                             args);
    auto fast = simulateFpga(*tuned, HlsConfig::forTop("kernel"), "kernel",
                             args);
    ASSERT_TRUE(fast.run.ok) << fast.run.trap;
    EXPECT_EQ(fast.run.ret.i, cpu.ret.i) << "pragmas must not change results";
    EXPECT_LT(fast.millis, slow.millis);
    EXPECT_LT(fast.millis, cpu.cpuMillis())
        << "pipelined + unrolled kernel should beat the CPU";
}

TEST(FpgaModel, DataflowOverlapsTopLevelLoops)
{
    auto serial = parse(R"(
        void kernel(int a[128], int b[128]) {
            for (int i = 0; i < 128; i++) { a[i] = a[i] * 2; }
            for (int j = 0; j < 128; j++) { b[j] = b[j] + 1; }
        }
    )");
    auto overlapped = parse(R"(
        void kernel(int a[128], int b[128]) {
            #pragma HLS dataflow
            for (int i = 0; i < 128; i++) { a[i] = a[i] * 2; }
            for (int j = 0; j < 128; j++) { b[j] = b[j] + 1; }
        }
    )");
    cir::analyzeOrDie(*serial);
    cir::analyzeOrDie(*overlapped);
    std::vector<KernelArg> args{
        KernelArg::ofInts(std::vector<long>(128, 1)),
        KernelArg::ofInts(std::vector<long>(128, 1))};
    auto a = simulateFpga(*serial, HlsConfig::forTop("kernel"), "kernel",
                          args);
    auto b = simulateFpga(*overlapped, HlsConfig::forTop("kernel"),
                          "kernel", args);
    EXPECT_LT(b.millis, a.millis);
}

TEST(FpgaModel, HigherClockIsFaster)
{
    auto tu = parse(R"(
        int kernel(int a[64]) {
            int acc = 0;
            for (int i = 0; i < 64; i++) { acc += a[i]; }
            return acc;
        }
    )");
    cir::analyzeOrDie(*tu);
    std::vector<KernelArg> args{KernelArg::ofInts(std::vector<long>(64, 1))};
    HlsConfig slow_cfg = HlsConfig::forTop("kernel");
    slow_cfg.clock_mhz = 100;
    HlsConfig fast_cfg = HlsConfig::forTop("kernel");
    fast_cfg.clock_mhz = 400;
    auto slow = simulateFpga(*tu, slow_cfg, "kernel", args);
    auto fast = simulateFpga(*tu, fast_cfg, "kernel", args);
    EXPECT_LT(fast.millis, slow.millis);
}

TEST(Resources, NarrowTypesUseFewerBits)
{
    auto wide = parse("int buf[1024]; int kernel() { return buf[0]; }");
    auto narrow = parse(
        "fpga_uint<7> buf[1024]; int kernel() { return buf[0]; }");
    auto rw = estimateResources(*wide);
    auto rn = estimateResources(*narrow);
    EXPECT_GT(rw.bram_bits, rn.bram_bits);
    EXPECT_EQ(rw.bram_bits, 1024 * 32);
    EXPECT_EQ(rn.bram_bits, 1024 * 7);
}

TEST(Resources, UtilizationAndFit)
{
    auto tu = parse("int buf[1024]; int kernel() { return buf[0]; }");
    auto est = estimateResources(*tu);
    const DeviceSpec *big = findDevice("xcvu9p");
    ASSERT_NE(big, nullptr);
    EXPECT_TRUE(est.fits(*big));
    EXPECT_GE(est.utilization(*big), 0.0);
    EXPECT_EQ(findDevice("nonexistent"), nullptr);
}

TEST(Errors, CategoriesAndFormatting)
{
    EXPECT_EQ(allCategories().size(), size_t(kNumErrorCategories));
    HlsError e = diag::recursiveFunction("traverse", SourceLoc{4, 1});
    EXPECT_EQ(e.str().rfind("ERROR: [XFORM 202-876]", 0), 0u);
    EXPECT_EQ(categoryName(ErrorCategory::StructAndUnion),
              "Struct and Union");
}

} // namespace
} // namespace heterogen::hls
