/** @file Tests for loop-profile attribution and the FPGA latency model's
 * acceleration rules. */

#include <gtest/gtest.h>

#include "cir/parser.h"
#include "cir/sema.h"
#include "hls/compiler.h"
#include "hls/fpga_model.h"
#include "interp/interp.h"

namespace heterogen::hls {
namespace {

using cir::parse;
using interp::KernelArg;

TEST(LoopProfile, AttributesCyclesToInnermostActiveLoop)
{
    auto tu = parse(R"(
        int kernel(int n) {
            int acc = 0;
            for (int i = 0; i < 4; i++) {
                for (int j = 0; j < 8; j++) {
                    acc += i * j;
                }
            }
            return acc;
        }
    )");
    cir::analyzeOrDie(*tu);
    interp::LoopProfile profile;
    interp::RunOptions opts;
    opts.loop_profile = &profile;
    auto r = interp::runProgram(*tu, "kernel", {KernelArg::ofInt(0)},
                                opts);
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(profile.loops.size(), 2u);
    const interp::LoopRecord *outer = nullptr;
    const interp::LoopRecord *inner = nullptr;
    for (const auto &[id, rec] : profile.loops) {
        if (rec.parent_id == -1)
            outer = &rec;
        else
            inner = &rec;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->iterations, 4u);
    EXPECT_EQ(inner->iterations, 32u);
    EXPECT_EQ(inner->parent_id, outer->node_id);
    EXPECT_GT(inner->cycles_exclusive, outer->cycles_exclusive)
        << "the inner loop does the work";
    // Total attribution is exact.
    EXPECT_EQ(profile.totalCycles(), r.cycles);
}

TEST(LoopProfile, CalleeLoopsAttributeToThemselves)
{
    auto tu = parse(R"(
        int work(int k) {
            int acc = 0;
            for (int i = 0; i < 16; i++) { acc += i * k; }
            return acc;
        }
        int kernel(int n) {
            int total = 0;
            for (int c = 0; c < 4; c++) { total += work(c); }
            return total;
        }
    )");
    cir::analyzeOrDie(*tu);
    interp::LoopProfile profile;
    interp::RunOptions opts;
    opts.loop_profile = &profile;
    ASSERT_TRUE(
        interp::runProgram(*tu, "kernel", {KernelArg::ofInt(0)}, opts)
            .ok);
    ASSERT_EQ(profile.loops.size(), 2u);
    // The callee's loop is "nested" dynamically under the caller's.
    int children = 0;
    for (const auto &[id, rec] : profile.loops)
        children += rec.parent_id != -1 ? 1 : 0;
    EXPECT_EQ(children, 1);
}

TEST(FpgaModel, PipelineAccelerationBoundedByBodyLatency)
{
    // A two-cycle body cannot be accelerated 32x by pipelining.
    auto tiny_body = parse(R"(
        int kernel(int a[64]) {
            int acc = 0;
            for (int i = 0; i < 64; i++) {
                #pragma HLS pipeline II=1
                acc += 1;
            }
            return acc;
        }
    )");
    cir::analyzeOrDie(*tiny_body);
    std::vector<LoopAcceleration> accel;
    simulateFpga(*tiny_body, HlsConfig::forTop("kernel"), "kernel",
                 {KernelArg::ofInts(std::vector<long>(64, 1))}, {},
                 &accel);
    ASSERT_EQ(accel.size(), 1u);
    EXPECT_LT(accel[0].pipeline_factor, 32.0);
    EXPECT_GE(accel[0].pipeline_factor, 1.0);
}

TEST(FpgaModel, HigherIIReducesPipelineCredit)
{
    const char *fmt = R"(
        int kernel(int a[64]) {
            int acc = 0;
            for (int i = 0; i < 64; i++) {
                #pragma HLS pipeline II=%s
                acc += a[i] * 3 + a[i] / 2;
            }
            return acc;
        }
    )";
    auto program_for = [&](const char *ii) {
        std::string src = fmt;
        src.replace(src.find("%s"), 2, ii);
        auto tu = parse(src);
        cir::analyzeOrDie(*tu);
        return tu;
    };
    auto fast = program_for("1");
    auto slow = program_for("4");
    std::vector<KernelArg> args{
        KernelArg::ofInts(std::vector<long>(64, 2))};
    auto a = simulateFpga(*fast, HlsConfig::forTop("kernel"), "kernel",
                          args);
    auto b = simulateFpga(*slow, HlsConfig::forTop("kernel"), "kernel",
                          args);
    EXPECT_LT(a.millis, b.millis);
}

TEST(FpgaModel, UnrollBoundedByMemoryPortsUnlessPartitioned)
{
    const char *unpartitioned = R"(
        int kernel(int a[64]) {
            int acc = 0;
            for (int i = 0; i < 64; i++) {
                #pragma HLS unroll factor=16
                acc += a[i];
            }
            return acc;
        }
    )";
    const char *partitioned = R"(
        int kernel(int a[64]) {
            #pragma HLS array_partition variable=a factor=8
            int acc = 0;
            for (int i = 0; i < 64; i++) {
                #pragma HLS unroll factor=16
                acc += a[i];
            }
            return acc;
        }
    )";
    auto tu1 = parse(unpartitioned);
    auto tu2 = parse(partitioned);
    cir::analyzeOrDie(*tu1);
    cir::analyzeOrDie(*tu2);
    std::vector<LoopAcceleration> a1, a2;
    std::vector<KernelArg> args{
        KernelArg::ofInts(std::vector<long>(64, 1))};
    simulateFpga(*tu1, HlsConfig::forTop("kernel"), "kernel", args, {},
                 &a1);
    simulateFpga(*tu2, HlsConfig::forTop("kernel"), "kernel", args, {},
                 &a2);
    ASSERT_EQ(a1.size(), 1u);
    ASSERT_EQ(a2.size(), 1u);
    EXPECT_DOUBLE_EQ(a1[0].unroll_factor, 2.0)
        << "dual-port BRAM bounds unpartitioned unrolling";
    EXPECT_GT(a2[0].unroll_factor, a1[0].unroll_factor);
}

TEST(FpgaModel, DataflowOnlyOverlapsTopLevelLoops)
{
    auto tu = parse(R"(
        void kernel(int a[32], int b[32]) {
            #pragma HLS dataflow
            for (int i = 0; i < 32; i++) {
                a[i] = a[i] + 1;
                for (int j = 0; j < 2; j++) { b[j] += 1; }
            }
            for (int k = 0; k < 32; k++) { b[k] = b[k] * 2; }
        }
    )");
    cir::analyzeOrDie(*tu);
    std::vector<LoopAcceleration> accel;
    std::vector<KernelArg> args{
        KernelArg::ofInts(std::vector<long>(32, 1)),
        KernelArg::ofInts(std::vector<long>(32, 1))};
    simulateFpga(*tu, HlsConfig::forTop("kernel"), "kernel", args, {},
                 &accel);
    int overlapped = 0;
    int serial = 0;
    for (const auto &a : accel) {
        if (a.dataflow_factor > 1.0)
            ++overlapped;
        else
            ++serial;
    }
    EXPECT_EQ(overlapped, 2) << "the two top-level loops overlap";
    EXPECT_EQ(serial, 1) << "the nested loop does not";
}

TEST(FpgaModel, TransferScalesWithArgumentCells)
{
    auto tu = parse(R"(
        int kernel(int a[1024]) { return a[0]; }
    )");
    cir::analyzeOrDie(*tu);
    auto small = simulateFpga(*tu, HlsConfig::forTop("kernel"), "kernel",
                              {KernelArg::ofInts(std::vector<long>(8))});
    auto large = simulateFpga(
        *tu, HlsConfig::forTop("kernel"), "kernel",
        {KernelArg::ofInts(std::vector<long>(1024))});
    EXPECT_GT(large.transfer_cycles, small.transfer_cycles);
    EXPECT_GE(large.transfer_cycles - small.transfer_cycles,
              (1024 - 8) / 8);
}

TEST(Toolchain, SynthCostGrowsWithDesignSize)
{
    double small = HlsToolchain::synthMinutes(50, 0, 0);
    double large = HlsToolchain::synthMinutes(500, 10, 3);
    EXPECT_GT(large, small);
    EXPECT_GT(small, 1.0) << "even tiny designs pay the elaboration floor";
}

TEST(Toolchain, StatsAccumulateAcrossCalls)
{
    auto tu = parse("int kernel(int x) { return x; }");
    cir::analyzeOrDie(*tu);
    HlsToolchain tool(HlsConfig::forTop("kernel"));
    tool.compile(*tu);
    tool.cosim(*tu, "kernel", {KernelArg::ofInt(1)});
    tool.cosim(*tu, "kernel", {KernelArg::ofInt(2)});
    EXPECT_EQ(tool.stats().compile_invocations, 1);
    EXPECT_EQ(tool.stats().cosim_invocations, 2);
    double before_reset = tool.stats().total_minutes;
    EXPECT_GT(before_reset, 0.0);
    tool.resetStats();
    EXPECT_EQ(tool.stats().compile_invocations, 0);
}

} // namespace
} // namespace heterogen::hls
