/** @file Property tests over randomly generated CIR programs: printer
 * round-trips, interpreter determinism, pragma semantic-neutrality, and
 * differential testing's sensitivity to quantization. */

#include <gtest/gtest.h>

#include <sstream>

#include "cir/parser.h"
#include "cir/printer.h"
#include "cir/sema.h"
#include "hls/fpga_model.h"
#include "interp/interp.h"
#include "repair/transforms.h"
#include "support/rng.h"

namespace heterogen {
namespace {

using cir::parse;
using interp::KernelArg;

/**
 * Generates small, always-terminating integer programs: one kernel with
 * two int parameters and one fixed-size array parameter, straight-line
 * arithmetic, bounded for loops, if/else, and guarded division.
 */
class ProgramGenerator
{
  public:
    explicit ProgramGenerator(uint64_t seed) : rng_(seed) {}

    std::string
    generate()
    {
        std::ostringstream os;
        os << "int kernel(int a[8], int x, int y) {\n";
        os << "    int acc = x;\n";
        int depth = 0;
        int stmts = 3 + int(rng_.below(6));
        for (int i = 0; i < stmts; ++i)
            emitStmt(os, depth);
        os << "    return acc;\n}\n";
        return os.str();
    }

  private:
    std::string
    operand()
    {
        switch (rng_.below(5)) {
          case 0: return "x";
          case 1: return "y";
          case 2: return "acc";
          case 3:
            return "a[" + std::to_string(rng_.below(8)) + "]";
          default:
            return std::to_string(rng_.range(-9, 9));
        }
    }

    std::string
    expr()
    {
        static const char *ops[] = {"+", "-", "*", "&", "|", "^"};
        std::string e = operand();
        int terms = 1 + int(rng_.below(3));
        for (int i = 0; i < terms; ++i)
            e += std::string(" ") + ops[rng_.below(6)] + " " + operand();
        return e;
    }

    void
    emitStmt(std::ostringstream &os, int &depth)
    {
        std::string indent(4 * (depth + 1), ' ');
        switch (rng_.below(4)) {
          case 0:
            os << indent << "acc = " << expr() << ";\n";
            break;
          case 1:
            os << indent << "a[" << rng_.below(8)
               << "] = " << expr() << ";\n";
            break;
          case 2: {
            os << indent << "if (" << operand() << " > " << operand()
               << ") { acc = acc + 1; } else { acc = acc - "
               << rng_.below(4) << "; }\n";
            break;
          }
          default: {
            std::string iv = "i" + std::to_string(rng_.below(1000));
            os << indent << "for (int " << iv << " = 0; " << iv << " < "
               << (1 + rng_.below(8)) << "; " << iv << "++) { acc = acc "
               << "+ a[" << iv << " % 8]; }\n";
            break;
          }
        }
    }

    Rng rng_;
};

std::vector<KernelArg>
someArgs(uint64_t seed)
{
    Rng rng(seed);
    std::vector<long> cells(8);
    for (long &c : cells)
        c = rng.range(-100, 100);
    return {KernelArg::ofInts(cells), KernelArg::ofInt(rng.range(-50, 50)),
            KernelArg::ofInt(rng.range(-50, 50))};
}

class RandomProgramTest : public ::testing::TestWithParam<int>
{};

TEST_P(RandomProgramTest, PrinterReachesFixpoint)
{
    ProgramGenerator gen(GetParam());
    std::string src = gen.generate();
    auto tu = parse(src);
    std::string once = cir::print(*tu);
    std::string twice = cir::print(*parse(once));
    EXPECT_EQ(once, twice) << src;
}

TEST_P(RandomProgramTest, SemaAcceptsGeneratedPrograms)
{
    ProgramGenerator gen(GetParam());
    auto tu = parse(gen.generate());
    EXPECT_TRUE(cir::analyze(*tu).ok());
}

TEST_P(RandomProgramTest, InterpreterIsDeterministic)
{
    ProgramGenerator gen(GetParam());
    auto tu = parse(gen.generate());
    cir::analyzeOrDie(*tu);
    auto args = someArgs(GetParam() * 7 + 1);
    auto a = interp::runProgram(*tu, "kernel", args);
    auto b = interp::runProgram(*tu, "kernel", args);
    ASSERT_TRUE(a.ok) << a.trap;
    EXPECT_TRUE(a.sameBehavior(b));
    EXPECT_EQ(a.cycles, b.cycles);
}

TEST_P(RandomProgramTest, PipelinePragmasNeverChangeBehavior)
{
    ProgramGenerator gen(GetParam());
    std::string src = gen.generate();
    auto original = parse(src);
    auto tuned = parse(src);
    cir::analyzeOrDie(*original);
    cir::analyzeOrDie(*tuned);
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    repair::RepairContext ctx{*tuned, config, "", nullptr, nullptr,
                              false};
    repair::xform::insertPipeline(ctx);
    repair::xform::insertUnroll(ctx);
    cir::analyzeOrDie(*tuned);
    for (int k = 0; k < 4; ++k) {
        auto args = someArgs(GetParam() * 31 + k);
        auto a = interp::runProgram(*original, "kernel", args);
        auto fpga = hls::simulateFpga(*tuned, config, "kernel", args);
        EXPECT_TRUE(a.sameBehavior(fpga.run))
            << src << "\nargs " << interp::argsToString(args);
    }
}

TEST_P(RandomProgramTest, CoverageWithinBounds)
{
    ProgramGenerator gen(GetParam());
    auto tu = parse(gen.generate());
    auto sema = cir::analyzeOrDie(*tu);
    interp::CoverageMap cov(sema.num_branches);
    interp::RunOptions opts;
    opts.coverage = &cov;
    interp::runProgram(*tu, "kernel", someArgs(GetParam()), opts);
    EXPECT_GE(cov.coverage(), 0.0);
    EXPECT_LE(cov.coverage(), 1.0);
    EXPECT_LE(int(cov.hitCount()), 2 * sema.num_branches);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(1, 33));

TEST(DiffTestSensitivity, QuantizationDivergenceIsCaught)
{
    // Narrowing a float accumulator to a tiny mantissa visibly changes
    // results; differential testing must notice.
    auto original = parse(R"(
        float kernel(float x) { float acc = x * 1.001; return acc; }
    )");
    auto narrowed = parse(R"(
        float kernel(float x) {
            fpga_float<8,4> acc = x * 1.001;
            return acc;
        }
    )");
    cir::analyzeOrDie(*original);
    cir::analyzeOrDie(*narrowed);
    auto a = interp::runProgram(*original, "kernel",
                                {KernelArg::ofFloat(123.456)});
    auto b = interp::runProgram(*narrowed, "kernel",
                                {KernelArg::ofFloat(123.456)});
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_FALSE(a.sameBehavior(b));
}

TEST(DiffTestSensitivity, WideMantissaIsInvisible)
{
    auto original = parse(R"(
        float kernel(float x) { float acc = x * 1.001; return acc; }
    )");
    auto widened = parse(R"(
        float kernel(float x) {
            fpga_float<8,52> acc = x * 1.001;
            return acc;
        }
    )");
    cir::analyzeOrDie(*original);
    cir::analyzeOrDie(*widened);
    for (double v : {0.0, 1.0, -2.5, 123.456, 1e6}) {
        auto a = interp::runProgram(*original, "kernel",
                                    {KernelArg::ofFloat(v)});
        auto b = interp::runProgram(*widened, "kernel",
                                    {KernelArg::ofFloat(v)});
        EXPECT_TRUE(a.sameBehavior(b)) << v;
    }
}

} // namespace
} // namespace heterogen
