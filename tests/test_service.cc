/** @file Conversion-service scheduler tests: option/spec validation,
 * job lifecycle, priority + fair-share dispatch, preemption, tenant
 * quotas, and scheduled/live cancellation (including mid-pipeline
 * cancellation stopping promptly without leaking slots).
 */

#include <gtest/gtest.h>

#include <thread>

#include "service/service.h"
#include "support/diagnostics.h"

namespace heterogen::service {
namespace {

/** Tiny arithmetic kernel: parses, repairs, and difftests quickly. The
 * long double accumulator guarantees the repair search has real work. */
const char *kTinySource = R"(
int scale(int x, int y) {
    long double acc = 0.299L * x + 0.587L * y;
    long double bias = acc * 0.125L + 1.0L;
    return bias;
}
)";

/** A loopy kernel whose fuzzing campaign runs long enough in simulated
 * minutes that arrivals and scheduled cancels can land mid-run. */
const char *kLoopSource = R"(
int sum(int a[32], int n) {
    if (n < 0) { n = 0; }
    if (n > 32) { n = 32; }
    long double acc = 0.0L;
    for (int i = 0; i < n; i++) {
        acc = acc + a[i] * 0.5L + 1.0L;
    }
    return acc;
}
)";

core::HeteroGenOptions
tinyOptions(uint64_t seed = 1)
{
    core::HeteroGenOptions opts;
    opts.kernel = "scale";
    opts.fuzz.rng_seed = seed;
    opts.fuzz.max_executions = 60;
    opts.fuzz.mutations_per_input = 4;
    opts.fuzz.min_suite_size = 8;
    opts.fuzz.budget_minutes = 30;
    opts.fuzz.plateau_minutes = 10;
    opts.fuzz.max_steps_per_run = 100000;
    opts.search.budget_minutes = 60;
    opts.search.max_iterations = 40;
    opts.search.difftest_sample = 4;
    opts.search.rng_seed = seed * 31 + 7;
    opts.engine = "bytecode";
    return opts;
}

core::HeteroGenOptions
loopOptions(uint64_t seed = 1)
{
    core::HeteroGenOptions opts = tinyOptions(seed);
    opts.kernel = "sum";
    opts.fuzz.max_executions = 600;
    opts.fuzz.mutations_per_input = 8;
    return opts;
}

JobSpec
tinyJob(const std::string &tenant, double arrival = 0,
        Priority priority = Priority::Normal, uint64_t seed = 1)
{
    JobSpec spec;
    spec.tenant = tenant;
    spec.priority = priority;
    spec.arrival_minutes = arrival;
    spec.source = kTinySource;
    spec.options = tinyOptions(seed);
    return spec;
}

JobSpec
loopJob(const std::string &tenant, double arrival = 0,
        Priority priority = Priority::Normal, uint64_t seed = 1)
{
    JobSpec spec = tinyJob(tenant, arrival, priority, seed);
    spec.source = kLoopSource;
    spec.options = loopOptions(seed);
    return spec;
}

/** Simulated minutes one uncancelled run of `spec` takes. */
double
soloDuration(const JobSpec &spec)
{
    ServiceOptions so;
    so.slots = 1;
    ConversionService svc(so);
    JobSpec copy = spec;
    copy.arrival_minutes = 0;
    copy.cancel_at_minutes = -1;
    int id = svc.submit(copy);
    svc.drain();
    const JobOutcome &out = svc.collect(id);
    EXPECT_EQ(out.status.state, JobState::Completed);
    return out.status.finish_minutes - out.status.start_minutes;
}

// ---------------------------------------------------------------------
// Validation diagnostics.

TEST(ServiceValidation, RejectsBadSchedulerOptions)
{
    ServiceOptions o;
    o.slots = 0;
    EXPECT_THROW(validateServiceOptions(o), FatalError);
    o = {};
    o.host_threads = -1;
    EXPECT_THROW(validateServiceOptions(o), FatalError);
    o = {};
    o.eval_threads = 0;
    EXPECT_THROW(validateServiceOptions(o), FatalError);
}

TEST(ServiceValidation, RejectsNonpositiveTenantQuota)
{
    ServiceOptions o;
    o.tenants.push_back({"acme", 0.0, 1.0});
    EXPECT_THROW(validateServiceOptions(o), FatalError);
    o.tenants[0].quota_minutes = -5;
    EXPECT_THROW(validateServiceOptions(o), FatalError);
    o.tenants[0].quota_minutes = 10;
    validateServiceOptions(o); // positive quota is fine
}

TEST(ServiceValidation, RejectsBadTenantSpecs)
{
    ServiceOptions o;
    o.tenants.push_back({"", 10.0, 1.0});
    EXPECT_THROW(validateServiceOptions(o), FatalError);
    o.tenants[0].id = "acme";
    o.tenants[0].weight = 0;
    EXPECT_THROW(validateServiceOptions(o), FatalError);
    o.tenants[0].weight = 1;
    o.tenants.push_back({"acme", 10.0, 1.0});
    EXPECT_THROW(validateServiceOptions(o), FatalError);
}

TEST(ServiceValidation, RejectsUnknownPriorityNames)
{
    EXPECT_EQ(parsePriority("high"), Priority::High);
    EXPECT_EQ(parsePriority("NORMAL"), Priority::Normal);
    EXPECT_EQ(parsePriority("Low"), Priority::Low);
    EXPECT_FALSE(parsePriority("urgent").has_value());
    EXPECT_THROW(priorityFromName("urgent"), FatalError);
    EXPECT_EQ(priorityFromName("high"), Priority::High);
}

TEST(ServiceValidation, RejectsMalformedJobSpecs)
{
    JobSpec spec = tinyJob("acme");
    validateJobSpec(spec); // baseline is valid

    JobSpec bad = spec;
    bad.tenant.clear();
    EXPECT_THROW(validateJobSpec(bad), FatalError);

    bad = spec;
    bad.source.clear();
    EXPECT_THROW(validateJobSpec(bad), FatalError);

    bad = spec;
    bad.arrival_minutes = -1;
    EXPECT_THROW(validateJobSpec(bad), FatalError);

    bad = spec;
    bad.arrival_minutes = 10;
    bad.cancel_at_minutes = 5; // cancel before arrival
    EXPECT_THROW(validateJobSpec(bad), FatalError);

    bad = spec;
    bad.options.kernel.clear(); // core::validateOptions rejects
    EXPECT_THROW(validateJobSpec(bad), FatalError);

    bad = spec;
    bad.proposer = "gpt4"; // per-job proposer names are validated
    EXPECT_THROW(validateJobSpec(bad), FatalError);

    bad = spec;
    bad.options.proposer = "gpt4"; // and the nested pipeline knob
    EXPECT_THROW(validateJobSpec(bad), FatalError);

    for (const char *name : {"", "template", "corpus", "mixed"}) {
        JobSpec ok = spec;
        ok.proposer = name;
        EXPECT_NO_THROW(validateJobSpec(ok)) << name;
    }
}

TEST(ServiceValidation, PerJobProposerOverrideReachesTheRun)
{
    ConversionService svc(ServiceOptions{});
    JobSpec corpus_job = tinyJob("acme");
    corpus_job.proposer = "corpus";
    int corpus_id = svc.submit(corpus_job);
    int default_id = svc.submit(tinyJob("acme"));
    svc.drain();

    const JobOutcome &corpus_out = svc.collect(corpus_id);
    ASSERT_TRUE(corpus_out.has_report);
    EXPECT_EQ(corpus_out.report.search.proposer, "corpus");

    const JobOutcome &default_out = svc.collect(default_id);
    ASSERT_TRUE(default_out.has_report);
    EXPECT_EQ(default_out.report.search.proposer, "template");
}

TEST(ServiceValidation, UnknownTenantNeedsAutoRegistration)
{
    ServiceOptions o;
    o.auto_register_tenants = false;
    o.tenants.push_back({"acme", 100.0, 1.0});
    ConversionService svc(o);
    EXPECT_THROW(svc.submit(tinyJob("ghost")), FatalError);
    EXPECT_EQ(svc.submit(tinyJob("acme")), 0);
}

// ---------------------------------------------------------------------
// Lifecycle.

TEST(Service, RunsOneJobToCompletion)
{
    ConversionService svc;
    int id = svc.submit(tinyJob("acme"));
    EXPECT_EQ(svc.poll(id).state, JobState::Pending);
    svc.drain();

    JobStatus status = svc.poll(id);
    EXPECT_EQ(status.state, JobState::Completed);
    EXPECT_EQ(status.stop_reason, "");
    EXPECT_EQ(status.stage, "repair") << "last stage entered";
    EXPECT_GE(status.start_minutes, 0);
    EXPECT_GT(status.finish_minutes, status.start_minutes);

    const JobOutcome &out = svc.collect(id);
    ASSERT_TRUE(out.has_report);
    EXPECT_TRUE(out.report.ok());
    EXPECT_FALSE(out.trace_json.empty());

    SchedulerStats stats = svc.stats();
    EXPECT_EQ(stats.jobs_submitted, 1);
    EXPECT_EQ(stats.jobs_completed, 1);
    ASSERT_EQ(stats.tenants.size(), 1u);
    EXPECT_EQ(stats.tenants[0].id, "acme");
    EXPECT_GT(stats.tenants[0].consumed_minutes, 0);
}

TEST(Service, CollectBeforeTerminalIsAnError)
{
    ConversionService svc;
    int id = svc.submit(tinyJob("acme"));
    EXPECT_THROW(svc.collect(id), FatalError);
    EXPECT_THROW(svc.poll(99), FatalError);
    svc.drain();
    EXPECT_NO_THROW(svc.collect(id));
}

TEST(Service, SlotsBoundConcurrencyInSimulatedTime)
{
    ServiceOptions o;
    o.slots = 2;
    ConversionService svc(o);
    for (int i = 0; i < 5; ++i)
        svc.submit(tinyJob("acme", 0, Priority::Normal, 1 + i));
    svc.drain();
    SchedulerStats stats = svc.stats();
    EXPECT_EQ(stats.jobs_completed, 5);
    EXPECT_EQ(stats.max_in_flight, 2);
}

TEST(Service, ParseFailureMeansFailedJob)
{
    ConversionService svc;
    JobSpec spec = tinyJob("acme");
    spec.source = "int broken(";
    int id = svc.submit(spec);
    int good = svc.submit(tinyJob("acme"));
    svc.drain();
    JobStatus status = svc.poll(id);
    EXPECT_EQ(status.state, JobState::Failed);
    EXPECT_EQ(status.stop_reason.rfind("error: ", 0), 0u)
        << status.stop_reason;
    EXPECT_FALSE(svc.collect(id).has_report);
    // The failure releases its slot: the good job still completes.
    EXPECT_EQ(svc.poll(good).state, JobState::Completed);
}

// ---------------------------------------------------------------------
// Priority, fair share, preemption.

TEST(Service, HigherPriorityDispatchesFirst)
{
    ServiceOptions o;
    o.slots = 1;
    ConversionService svc(o);
    int low = svc.submit(tinyJob("acme", 0, Priority::Low));
    int normal = svc.submit(tinyJob("acme", 0, Priority::Normal));
    int high = svc.submit(tinyJob("acme", 0, Priority::High));
    svc.drain();
    EXPECT_LT(svc.poll(high).start_minutes,
              svc.poll(normal).start_minutes);
    EXPECT_LT(svc.poll(normal).start_minutes,
              svc.poll(low).start_minutes);
}

TEST(Service, EqualWeightTenantsAlternate)
{
    ServiceOptions o;
    o.slots = 1;
    ConversionService svc(o);
    std::vector<int> a_jobs, b_jobs;
    for (int i = 0; i < 3; ++i) {
        a_jobs.push_back(svc.submit(tinyJob("alpha", 0)));
        b_jobs.push_back(svc.submit(tinyJob("beta", 0)));
    }
    svc.drain();
    // With one slot and equal weights the fair-share order interleaves
    // the tenants: the k-th alpha job and k-th beta job bracket each
    // other instead of one tenant draining first.
    for (int k = 0; k + 1 < 3; ++k) {
        EXPECT_LT(svc.poll(a_jobs[k]).start_minutes,
                  svc.poll(b_jobs[k + 1]).start_minutes);
        EXPECT_LT(svc.poll(b_jobs[k]).start_minutes,
                  svc.poll(a_jobs[k + 1]).start_minutes);
    }
}

TEST(Service, WeightedTenantGetsLargerShare)
{
    ServiceOptions o;
    o.slots = 1;
    o.tenants.push_back({"whale", 1e9, 3.0});
    o.tenants.push_back({"minnow", 1e9, 1.0});
    ConversionService svc(o);
    for (int i = 0; i < 4; ++i) {
        svc.submit(tinyJob("whale", 0, Priority::Normal, 1 + i));
        svc.submit(tinyJob("minnow", 0, Priority::Normal, 1 + i));
    }
    svc.drain();
    // Among the first half of the serialized schedule the weight-3
    // tenant must have started strictly more jobs.
    std::vector<double> starts;
    int whale_early = 0, minnow_early = 0;
    for (int id = 0; id < 8; ++id)
        starts.push_back(svc.poll(id).start_minutes);
    std::vector<double> sorted = starts;
    std::sort(sorted.begin(), sorted.end());
    double median = sorted[3];
    for (int id = 0; id < 8; ++id) {
        if (starts[id] > median)
            continue;
        (svc.poll(id).tenant == "whale" ? whale_early : minnow_early)++;
    }
    EXPECT_GT(whale_early, minnow_early);
}

TEST(Service, HighPriorityArrivalPreemptsRunningJob)
{
    JobSpec victim = loopJob("slowpoke");
    double victim_minutes = soloDuration(victim);
    ASSERT_GT(victim_minutes, 1.0)
        << "loop job too short for a mid-run arrival";

    ServiceOptions o;
    o.slots = 1;
    ConversionService svc(o);
    int low = svc.submit(victim);
    int high = svc.submit(
        tinyJob("vip", victim_minutes / 2, Priority::High));
    svc.drain();

    JobStatus low_status = svc.poll(low);
    JobStatus high_status = svc.poll(high);
    EXPECT_EQ(low_status.preemptions, 1);
    EXPECT_EQ(svc.stats().preemptions, 1);
    EXPECT_EQ(high_status.start_minutes, high_status.arrival_minutes)
        << "the high-priority job must not wait";
    // The victim restarts after the preemptor finishes and completes.
    EXPECT_EQ(low_status.state, JobState::Completed);
    EXPECT_GE(low_status.start_minutes, high_status.finish_minutes);
    // Restart semantics: the wasted partial run is charged too.
    SchedulerStats stats = svc.stats();
    for (const TenantStats &t : stats.tenants) {
        if (t.id == "slowpoke")
            EXPECT_GT(t.consumed_minutes, victim_minutes);
    }
}

TEST(Service, PreemptionCanBeDisabled)
{
    JobSpec victim = loopJob("slowpoke");
    double victim_minutes = soloDuration(victim);

    ServiceOptions o;
    o.slots = 1;
    o.preemption = false;
    ConversionService svc(o);
    int low = svc.submit(victim);
    int high = svc.submit(
        tinyJob("vip", victim_minutes / 2, Priority::High));
    svc.drain();
    EXPECT_EQ(svc.stats().preemptions, 0);
    EXPECT_GE(svc.poll(high).start_minutes,
              svc.poll(low).finish_minutes);
}

// ---------------------------------------------------------------------
// Tenant quotas.

TEST(Service, QuotaTruncatesAndThenBlocksJobs)
{
    ServiceOptions o;
    o.slots = 1;
    o.tenants.push_back({"budgeted", 1.0, 1.0});
    ConversionService svc(o);
    int first = svc.submit(loopJob("budgeted"));
    int second = svc.submit(tinyJob("budgeted"));
    svc.drain();

    // The first run is truncated by the tenant's 1-minute allowance:
    // cancelled for quota, but still carrying its best-effort report.
    JobStatus one = svc.poll(first);
    EXPECT_EQ(one.state, JobState::Cancelled);
    EXPECT_EQ(one.stop_reason, "quota");
    EXPECT_TRUE(svc.collect(first).has_report);

    // The allowance is now gone: the second job never dispatches.
    JobStatus two = svc.poll(second);
    EXPECT_EQ(two.state, JobState::Cancelled);
    EXPECT_EQ(two.stop_reason, "quota");
    EXPECT_EQ(two.start_minutes, -1);
    EXPECT_FALSE(svc.collect(second).has_report);
}

TEST(Service, ReservationMakesSameTenantJobsQueue)
{
    // The first job's reservation (its 20-minute pipeline budget)
    // covers the whole 20-minute quota, so the second same-tenant job
    // must wait for the first to finish — and give back the unused
    // reservation — even though a slot is free the whole time.
    ServiceOptions o;
    o.slots = 2;
    o.tenants.push_back({"acme", 20.0, 1.0});
    ConversionService svc(o);
    JobSpec spec = tinyJob("acme");
    spec.options.pipeline_budget_minutes = 20;
    int first = svc.submit(spec);
    spec.options.fuzz.rng_seed = 2;
    int second = svc.submit(spec);
    svc.drain();
    EXPECT_EQ(svc.poll(first).state, JobState::Completed);
    EXPECT_EQ(svc.poll(second).state, JobState::Completed);
    EXPECT_GE(svc.poll(second).start_minutes,
              svc.poll(first).finish_minutes);
    EXPECT_EQ(svc.stats().max_in_flight, 1);
}

// ---------------------------------------------------------------------
// Cancellation.

TEST(Service, ScheduledCancelBeforeStartNeverRuns)
{
    ServiceOptions o;
    o.slots = 1;
    ConversionService svc(o);
    int blocker = svc.submit(loopJob("acme"));
    JobSpec doomed = tinyJob("acme", 0.25);
    doomed.cancel_at_minutes = 0.5; // while the blocker still runs
    int id = svc.submit(doomed);
    svc.drain();
    EXPECT_EQ(svc.poll(blocker).state, JobState::Completed);
    JobStatus status = svc.poll(id);
    EXPECT_EQ(status.state, JobState::Cancelled);
    EXPECT_EQ(status.stop_reason, "cancel");
    EXPECT_EQ(status.start_minutes, -1);
    EXPECT_EQ(status.finish_minutes, 0.5);
    EXPECT_FALSE(svc.collect(id).has_report);
}

TEST(Service, MidPipelineCancelStopsPromptlyWithoutLeaks)
{
    // Learn where the stages fall so the cancel lands mid-repair.
    JobSpec probe = loopJob("acme");
    ServiceOptions solo;
    solo.slots = 1;
    ConversionService ref(solo);
    int ref_id = ref.submit(probe);
    ref.drain();
    const JobOutcome &full = ref.collect(ref_id);
    ASSERT_TRUE(full.has_report);
    double fuzz_minutes = full.report.testgen.sim_minutes;
    double total_minutes = full.status.finish_minutes;
    ASSERT_LT(fuzz_minutes, total_minutes);
    double cancel_at = fuzz_minutes + (total_minutes - fuzz_minutes) / 2;

    ServiceOptions o;
    o.slots = 1;
    ConversionService svc(o);
    JobSpec doomed = probe;
    doomed.cancel_at_minutes = cancel_at;
    int id = svc.submit(doomed);
    int next = svc.submit(tinyJob("acme")); // reuses the slot after
    svc.drain();

    JobStatus status = svc.poll(id);
    EXPECT_EQ(status.state, JobState::Cancelled);
    EXPECT_EQ(status.stop_reason, "cancel");
    EXPECT_EQ(status.stage, "repair")
        << "the cancel was scheduled to land mid-repair";
    // Prompt stop: the run ends well before its natural duration. The
    // budget machinery stops between charges, so allow one stage's
    // overshoot but not the full remaining tail.
    EXPECT_GE(status.finish_minutes, cancel_at);
    EXPECT_LT(status.finish_minutes, total_minutes);

    // Cancelled, not degraded: the truncated report carries no
    // degradation notes, and the cancelled state is the only marker.
    const JobOutcome &out = svc.collect(id);
    ASSERT_TRUE(out.has_report);
    EXPECT_TRUE(out.report.degradations.empty());
    EXPECT_FALSE(out.trace_json.empty());

    // No slot leaked: the follow-up job ran and completed.
    JobStatus follow = svc.poll(next);
    EXPECT_EQ(follow.state, JobState::Completed);
    EXPECT_GE(follow.start_minutes, status.finish_minutes);
}

TEST(Service, LiveCancelFromAnotherThread)
{
    ServiceOptions o;
    o.slots = 1;
    ConversionService svc(o);
    int id = svc.submit(loopJob("acme"));
    std::thread drainer([&svc] { svc.drain(); });
    // Live cancellation races the run by design; whatever it hits —
    // pending, running, or already finished — drain() must terminate
    // and leave the job terminal.
    svc.cancel(id);
    JobStatus mid = svc.poll(id); // poll during drain is safe
    (void)mid;
    drainer.join();
    JobStatus status = svc.poll(id);
    EXPECT_TRUE(status.state == JobState::Cancelled ||
                status.state == JobState::Completed)
        << jobStateName(status.state);
    if (status.state == JobState::Cancelled)
        EXPECT_EQ(status.stop_reason, "cancel");
    EXPECT_NO_THROW(svc.collect(id));
}

TEST(Service, CancelOnTerminalJobIsNoOp)
{
    ConversionService svc;
    int id = svc.submit(tinyJob("acme"));
    svc.drain();
    svc.cancel(id);
    EXPECT_EQ(svc.poll(id).state, JobState::Completed);
}

} // namespace
} // namespace heterogen::service
