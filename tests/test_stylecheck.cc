/** @file Tests for the lightweight HLS coding-style checker. */

#include <gtest/gtest.h>

#include "cir/parser.h"
#include "cir/sema.h"
#include "stylecheck/stylecheck.h"

namespace heterogen::style {
namespace {

StyleReport
checkSrc(const std::string &src)
{
    auto tu = cir::parse(src);
    cir::analyzeOrDie(*tu);
    return checkStyle(*tu);
}

TEST(StyleCheck, CleanKernel)
{
    auto r = checkSrc(R"(
        int kernel(int a[16]) {
            int acc = 0;
            for (int i = 0; i < 16; i++) {
                #pragma HLS pipeline II=1
                acc += a[i];
            }
            return acc;
        }
    )");
    EXPECT_TRUE(r.clean());
    EXPECT_LT(r.check_minutes, 0.2) << "style checking must be cheap";
}

TEST(StyleCheck, CatchesFrontEndProblems)
{
    auto r = checkSrc(R"(
        struct Node { int val; Node *next; };
        void helper(Node *n) { if (n != 0) { helper(n->next); } }
        int kernel(int n) {
            Node *head = (Node*)malloc(sizeof(Node));
            long double x = 1.0L;
            helper(head);
            return x;
        }
    )");
    ASSERT_FALSE(r.clean());
    auto has = [&](const char *needle) {
        for (const auto &i : r.issues) {
            if (i.message.find(needle) != std::string::npos)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(has("recursive"));
    EXPECT_TRUE(has("dynamic allocation"));
    EXPECT_TRUE(has("pointer"));
    EXPECT_TRUE(has("long double"));
}

TEST(StyleCheck, UnrollOutsideLoopRejected)
{
    auto r = checkSrc(R"(
        int kernel(int x) {
            #pragma HLS unroll factor=4
            return x;
        }
    )");
    ASSERT_FALSE(r.clean());
    EXPECT_NE(r.issues[0].message.find("outside a loop"),
              std::string::npos);
}

TEST(StyleCheck, DataflowMustBeAtTop)
{
    auto r = checkSrc(R"(
        int kernel(int a[8]) {
            int acc = 0;
            for (int i = 0; i < 8; i++) {
                #pragma HLS dataflow
                acc += a[i];
            }
            return acc;
        }
    )");
    ASSERT_FALSE(r.clean());
    EXPECT_NE(r.issues[0].message.find("top of a function"),
              std::string::npos);
}

TEST(StyleCheck, ArrayPartitionUnknownVariable)
{
    auto r = checkSrc(R"(
        int kernel(int a[8]) {
            #pragma HLS array_partition variable=nope factor=2
            return a[0];
        }
    )");
    ASSERT_FALSE(r.clean());
    EXPECT_NE(r.issues[0].message.find("unknown variable"),
              std::string::npos);
}

TEST(StyleCheck, ArrayPartitionKnownVariableOk)
{
    auto r = checkSrc(R"(
        int kernel(int a[8]) {
            #pragma HLS array_partition variable=a factor=2
            return a[0];
        }
    )");
    EXPECT_TRUE(r.clean());
}

TEST(StyleCheck, DeepErrorsAreNotStyleErrors)
{
    // Partition-factor divisibility and unroll/dataflow interactions are
    // only discoverable by full synthesis; the style checker must accept
    // these so the search still exercises the toolchain.
    auto r = checkSrc(R"(
        int A[13];
        int kernel() {
            #pragma HLS dataflow
            int acc = 0;
            for (int i = 0; i < 13; i++) {
                #pragma HLS array_partition variable=A factor=4
                #pragma HLS unroll factor=50
                acc += A[i];
            }
            return acc;
        }
    )");
    EXPECT_TRUE(r.clean());
}

TEST(StyleCheck, StructWithoutCtorIsStyleIssue)
{
    auto r = checkSrc(R"(
        struct S {
            int x;
            int get() { return x; }
        };
        int kernel() { return S{ 1 }.get(); }
    )");
    ASSERT_FALSE(r.clean());
    EXPECT_NE(r.issues[0].message.find("constructor"), std::string::npos);
}

TEST(StyleCheck, VlaIsStyleIssue)
{
    auto r = checkSrc("int kernel(int n) { int b[n]; return n; }");
    ASSERT_FALSE(r.clean());
}

TEST(StyleCheck, UnionIsStyleIssue)
{
    auto r = checkSrc(
        "union U { int i; float f; }; int kernel(int x) { return x; }");
    ASSERT_FALSE(r.clean());
}

} // namespace
} // namespace heterogen::style
