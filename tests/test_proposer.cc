/** @file CandidateProposer seam tests: name parsing and the factory,
 * corpus mining invariants (evidence-driven support, dependence-ordered
 * chains, deterministic ranking), the corpus/mixed proposers' retrieval
 * and retire behaviour, and the end-to-end contracts — searches driven
 * by every proposer are deterministic across eval-thread counts and
 * seeds, report proposer counters on the trace, and never memoize
 * tool failures under fault injection.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "core/heterogen.h"
#include "repair/corpus.h"
#include "repair/proposer.h"
#include "support/diagnostics.h"
#include "support/faults.h"
#include "support/run_context.h"
#include "support/strings.h"

namespace heterogen::repair {
namespace {

using hls::ErrorCategory;

// --- names, parsing, factory ---------------------------------------------

TEST(ProposerNames, ParsesEveryKnownNameAndTheEmptyDefault)
{
    for (const std::string &name : proposerNames()) {
        std::string canonical;
        EXPECT_TRUE(parseProposerName(name, &canonical)) << name;
        EXPECT_EQ(canonical, name);
    }
    std::string canonical;
    EXPECT_TRUE(parseProposerName("", &canonical));
    EXPECT_EQ(canonical, "template");
    EXPECT_FALSE(parseProposerName("gpt4"));
    EXPECT_FALSE(parseProposerName("Template")); // names are exact
    EXPECT_FALSE(parseProposerName("corpus ")); // no trimming
}

TEST(ProposerNames, FactoryBuildsEveryKnownNameAndRejectsUnknown)
{
    ProposerConfig config;
    for (const std::string &name : proposerNames()) {
        auto proposer = makeProposer(name, config);
        ASSERT_NE(proposer, nullptr);
        EXPECT_EQ(proposer->name(), name);
    }
    EXPECT_EQ(makeProposer("", config)->name(), "template");
    try {
        makeProposer("gpt4", config);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        // The diagnostic must name the bad value and the legal ones.
        EXPECT_TRUE(contains(e.what(), "gpt4"));
        EXPECT_TRUE(contains(e.what(), "template"));
        EXPECT_TRUE(contains(e.what(), "corpus"));
        EXPECT_TRUE(contains(e.what(), "mixed"));
    }
}

TEST(ProposerNames, DefaultHonoursEnvironmentWhenValid)
{
    const char *saved = std::getenv("HETEROGEN_PROPOSER");
    std::string restore = saved ? saved : "";

    ::setenv("HETEROGEN_PROPOSER", "corpus", 1);
    EXPECT_EQ(defaultProposerName(), "corpus");
    ::setenv("HETEROGEN_PROPOSER", "mixed", 1);
    EXPECT_EQ(defaultProposerName(), "mixed");
    // Unknown names are ignored, not fatal: the env is advisory.
    ::setenv("HETEROGEN_PROPOSER", "gpt4", 1);
    EXPECT_EQ(defaultProposerName(), "template");
    ::unsetenv("HETEROGEN_PROPOSER");
    EXPECT_EQ(defaultProposerName(), "template");

    if (saved)
        ::setenv("HETEROGEN_PROPOSER", restore.c_str(), 1);
}

// --- corpus mining --------------------------------------------------------

TEST(RewriteCorpus, InstanceCoversEveryErrorCategory)
{
    const RewriteCorpus &corpus = RewriteCorpus::instance();
    for (ErrorCategory category : hls::allCategories()) {
        EXPECT_FALSE(corpus.recipesFor(category).empty())
            << "no recipes mined for " << hls::categorySlug(category);
    }
    EXPECT_FALSE(corpus.performanceRecipes().empty());
    // Ten manual ports, four streaming-subject ports, and the
    // 1000-post Figure-3 forum corpus.
    EXPECT_EQ(corpus.documents(), 1014);
}

TEST(RewriteCorpus, RecipesAreDependenceOrderedWithPositiveSupport)
{
    const EditRegistry &registry = EditRegistry::instance();
    for (const RewriteRecipe *recipe : RewriteCorpus::instance().all()) {
        ASSERT_FALSE(recipe->edits.empty()) << recipe->id;
        EXPECT_GT(recipe->support, 0) << recipe->id;
        EXPECT_FALSE(recipe->examples.empty()) << recipe->id;
        std::set<std::string> earlier;
        for (const std::string &name : recipe->edits) {
            const EditTemplate *t = registry.find(name);
            ASSERT_NE(t, nullptr)
                << recipe->id << " names unknown edit " << name;
            for (const std::string &dep : t->requires_edits) {
                EXPECT_TRUE(earlier.count(dep))
                    << recipe->id << " applies " << name
                    << " before its dependence " << dep;
            }
            earlier.insert(name);
        }
    }
}

TEST(RewriteCorpus, BucketsAreRankedBySupportThenId)
{
    const RewriteCorpus &corpus = RewriteCorpus::instance();
    auto checkRanked = [](const std::vector<RewriteRecipe> &bucket) {
        for (size_t i = 1; i < bucket.size(); ++i) {
            const RewriteRecipe &a = bucket[i - 1];
            const RewriteRecipe &b = bucket[i];
            EXPECT_TRUE(a.support > b.support ||
                        (a.support == b.support && a.id < b.id))
                << a.id << " should not rank before " << b.id;
        }
    };
    for (ErrorCategory category : hls::allCategories())
        checkRanked(corpus.recipesFor(category));
    checkRanked(corpus.performanceRecipes());
}

TEST(RewriteCorpus, MiningIsEvidenceDriven)
{
    // No documents, no recipes: every catalogue entry needs support.
    EXPECT_TRUE(RewriteCorpus::mine({}, {}).all().empty());

    // One port pair where the expert removed malloc: only the
    // dynamic-memory recipes gain support, and the example records the
    // document id we supplied.
    RewriteCorpus corpus = RewriteCorpus::mine(
        {{"int f() { int *p = (int *)malloc(4); return p[0]; }",
          "int f() { int arena[4]; return arena[0]; }"}},
        {}, {"P42:manual"});
    const auto &dyn =
        corpus.recipesFor(ErrorCategory::DynamicDataStructures);
    ASSERT_FALSE(dyn.empty());
    for (const RewriteRecipe &recipe : dyn) {
        EXPECT_EQ(recipe.support, 1);
        ASSERT_EQ(recipe.examples.size(), 1u);
        EXPECT_EQ(recipe.examples[0], "P42:manual");
    }
    // Removing malloc also evidences the pointer rewrite filed under
    // unsupported types — but nothing about loops, structs or tops.
    for (const RewriteRecipe &recipe :
         corpus.recipesFor(ErrorCategory::UnsupportedDataTypes))
        EXPECT_EQ(recipe.id, "pointer_rewrite");
    EXPECT_TRUE(
        corpus.recipesFor(ErrorCategory::LoopParallelization).empty());
    EXPECT_TRUE(
        corpus.recipesFor(ErrorCategory::StructAndUnion).empty());
    EXPECT_TRUE(corpus.recipesFor(ErrorCategory::TopFunction).empty());

    // Mining is deterministic: same documents, same corpus.
    RewriteCorpus again = RewriteCorpus::mine(
        {{"int f() { int *p = (int *)malloc(4); return p[0]; }",
          "int f() { int arena[4]; return arena[0]; }"}},
        {}, {"P42:manual"});
    ASSERT_EQ(again.all().size(), corpus.all().size());
    for (size_t i = 0; i < again.all().size(); ++i) {
        EXPECT_EQ(again.all()[i]->id, corpus.all()[i]->id);
        EXPECT_EQ(again.all()[i]->support, corpus.all()[i]->support);
    }
}

// --- corpus proposer ------------------------------------------------------

ProposalRequest
repairRequest(ErrorCategory category, const std::set<std::string> *applied,
              Rng *rng)
{
    ProposalRequest request;
    request.phase = ProposalPhase::Repair;
    request.category = category;
    request.applied = applied;
    request.rng = rng;
    return request;
}

TEST(CorpusProposer, ProposesTheBestSurvivingRecipe)
{
    auto proposer = makeCorpusProposer(ProposerConfig{});
    std::set<std::string> applied;
    Rng rng(7);
    auto request =
        repairRequest(ErrorCategory::UnsupportedDataTypes, &applied, &rng);

    Proposal first = proposer->propose(request);
    ASSERT_EQ(first.candidates.size(), 1u);
    EXPECT_TRUE(startsWith(first.candidates[0].label, "corpus:"));
    EXPECT_FALSE(first.candidates[0].edits.empty());
    const std::string best = first.candidates[0].label;
    EXPECT_EQ(best,
              "corpus:" +
                  RewriteCorpus::instance()
                      .recipesFor(ErrorCategory::UnsupportedDataTypes)
                      .front()
                      .id);

    // Retrieval is stateless until feedback arrives.
    EXPECT_EQ(proposer->propose(request).candidates[0].label, best);
}

TEST(CorpusProposer, RetiresARecipeAfterThreeNoops)
{
    auto proposer = makeCorpusProposer(ProposerConfig{});
    std::set<std::string> applied;
    Rng rng(7);
    auto request =
        repairRequest(ErrorCategory::UnsupportedDataTypes, &applied, &rng);

    const std::string best = proposer->propose(request).candidates[0].label;
    proposer->observe({best, AttemptOutcome::Noop});
    proposer->observe({best, AttemptOutcome::Noop});
    EXPECT_EQ(proposer->propose(request).candidates[0].label, best)
        << "two noops are not yet disqualifying";
    proposer->observe({best, AttemptOutcome::Noop});
    Proposal after = proposer->propose(request);
    if (!after.candidates.empty())
        EXPECT_NE(after.candidates[0].label, best);
}

TEST(CorpusProposer, RetiresARecipeOnInvalidOrRevert)
{
    for (AttemptOutcome outcome :
         {AttemptOutcome::Invalid, AttemptOutcome::Reverted}) {
        auto proposer = makeCorpusProposer(ProposerConfig{});
        std::set<std::string> applied;
        Rng rng(7);
        auto request = repairRequest(ErrorCategory::DynamicDataStructures,
                                     &applied, &rng);
        const std::string best =
            proposer->propose(request).candidates[0].label;
        proposer->observe({best, outcome});
        Proposal after = proposer->propose(request);
        if (!after.candidates.empty())
            EXPECT_NE(after.candidates[0].label, best);
    }
}

TEST(CorpusProposer, HonoursAllowedEditsAndTheAppliedSet)
{
    ProposerConfig config;
    config.allowed_edits = {"segment($a1:arr)"};
    auto restricted = makeCorpusProposer(config);
    std::set<std::string> applied;
    Rng rng(7);
    // No struct recipe uses segment, so the restriction empties the
    // struct bucket entirely.
    EXPECT_TRUE(restricted
                    ->propose(repairRequest(ErrorCategory::StructAndUnion,
                                            &applied, &rng))
                    .candidates.empty());

    // A recipe whose every edit is already applied teaches nothing new.
    auto proposer = makeCorpusProposer(ProposerConfig{});
    auto request =
        repairRequest(ErrorCategory::UnsupportedDataTypes, &applied, &rng);
    while (true) {
        Proposal proposal = proposer->propose(request);
        if (proposal.candidates.empty())
            break;
        for (const EditTemplate *t : proposal.candidates[0].edits)
            applied.insert(t->name);
        // With its whole chain applied the recipe must stop coming
        // back even though no feedback retired it.
        Proposal again = proposer->propose(request);
        if (!again.candidates.empty())
            ASSERT_NE(again.candidates[0].label,
                      proposal.candidates[0].label);
    }
}

TEST(MixedProposer, AlternatesWhichSideProposesFirst)
{
    auto proposer = makeProposer("mixed", ProposerConfig{});
    std::set<std::string> applied;
    Rng rng(7);
    auto request = repairRequest(ErrorCategory::DynamicDataStructures,
                                 &applied, &rng);
    // Call 0: template side first (a bare template name); call 1: the
    // corpus side leads with a "corpus:" rewrite; then it repeats.
    Proposal a = proposer->propose(request);
    Proposal b = proposer->propose(request);
    Proposal c = proposer->propose(request);
    ASSERT_FALSE(a.candidates.empty());
    ASSERT_FALSE(b.candidates.empty());
    ASSERT_FALSE(c.candidates.empty());
    EXPECT_FALSE(startsWith(a.candidates[0].label, "corpus:"));
    EXPECT_TRUE(startsWith(b.candidates[0].label, "corpus:"));
    EXPECT_EQ(c.candidates[0].label, a.candidates[0].label);
}

// --- end-to-end: the search under each proposer ---------------------------

const char *kSubject =
    "int kernel(int x) { long double v = x; v = v + 1; return v; }";

core::HeteroGenOptions
pipelineOptions(const std::string &proposer, uint64_t seed = 3)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.fuzz.rng_seed = seed;
    opts.fuzz.max_executions = 120;
    opts.fuzz.min_suite_size = 8;
    opts.search.rng_seed = seed;
    opts.search.difftest_sample = 8;
    opts.search.budget_minutes = 400.0;
    opts.search.eval_threads = 1;
    opts.search.proposer = proposer;
    return opts;
}

TEST(ProposerSearch, EveryProposerRepairsTheSubject)
{
    core::HeteroGen engine(kSubject);
    for (const std::string &proposer : proposerNames()) {
        SCOPED_TRACE(proposer);
        auto report = engine.run(pipelineOptions(proposer));
        EXPECT_TRUE(report.ok())
            << join(report.search.applied_order, ", ");
        EXPECT_EQ(report.search.proposer, proposer);
    }
}

TEST(ProposerSearch, TraceCarriesProposerCounters)
{
    core::HeteroGen engine(kSubject);
    RunContext ctx;
    auto report = engine.run(ctx, pipelineOptions("corpus"));
    ASSERT_TRUE(report.ok());
    const auto &root = ctx.trace().root();
    EXPECT_GT(root.counterTotal("search.proposer.calls"), 0);
    EXPECT_GT(root.counterTotal("search.proposer.candidates"), 0);
    // The corpus proposer landed at least one multi-edit rewrite on
    // this subject (the type chain is a two-template recipe).
    EXPECT_GT(root.counterTotal("search.proposer.rewrites"), 0);
    EXPECT_GE(root.counterTotal("search.proposer.calls"),
              root.counterTotal("search.proposer.empty"));
}

TEST(ProposerSearch, DeterministicAcrossEvalThreadsAndSeeds)
{
    core::HeteroGen engine(kSubject);
    for (const std::string &proposer : {"corpus", "mixed"}) {
        for (uint64_t seed : {1, 2, 9}) {
            SCOPED_TRACE(proposer + " seed " + std::to_string(seed));
            auto base = pipelineOptions(proposer, seed);
            auto baseline = engine.run(base);
            for (int threads : {2, 8}) {
                auto opts = pipelineOptions(proposer, seed);
                opts.search.eval_threads = threads;
                auto report = engine.run(opts);
                EXPECT_EQ(report.trace_json, baseline.trace_json)
                    << threads << " threads";
                EXPECT_EQ(report.hls_source, baseline.hls_source);
                EXPECT_EQ(report.search.sim_minutes,
                          baseline.search.sim_minutes);
                EXPECT_EQ(report.search.pass_ratio,
                          baseline.search.pass_ratio);
            }
        }
    }
}

TEST(ProposerSearch, NeverMemoizesToolFailuresUnderFaults)
{
    // The never-memoize-tool-failures rule, exercised with the corpus
    // proposer: transient compile/cosim faults absorbed by retries must
    // leave the artifact bit-identical to the fault-free run. A
    // memoized failure would replay as a permanent verdict on revisit
    // and change the search's decisions.
    core::HeteroGen engine(kSubject);
    auto clean = engine.run(pipelineOptions("corpus"));
    ASSERT_TRUE(clean.ok());

    int faulted_runs = 0;
    for (uint64_t plan_seed = 1; plan_seed <= 20; ++plan_seed) {
        auto opts = pipelineOptions("corpus");
        opts.faults = FaultPlan::parse(
            "hls.compile:0.3:transient,difftest.cosim:0.2:transient",
            plan_seed);
        opts.retry.max_attempts = 8;
        opts.retry.backoff_minutes = 0.25;
        RunContext ctx;
        auto faulty = engine.run(ctx, opts);

        SCOPED_TRACE("plan seed " + std::to_string(plan_seed));
        int64_t injected =
            ctx.trace().root().counterTotal("fault.injected");
        faulted_runs += injected > 0;
        if (!faulty.ok())
            continue; // a site gave up; degradation is covered elsewhere
        EXPECT_EQ(faulty.hls_source, clean.hls_source);
        EXPECT_EQ(faulty.search.iterations, clean.search.iterations);
        EXPECT_EQ(faulty.search.applied_order,
                  clean.search.applied_order);
        if (injected > 0)
            EXPECT_GT(faulty.total_minutes, clean.total_minutes);
    }
    // Deterministic in the plan seeds — a floor, not a flaky statistic.
    // (The corpus proposer repairs this subject in few toolchain calls,
    // so many plans never get a chance to fire.)
    EXPECT_GE(faulted_runs, 5);
}

} // namespace
} // namespace heterogen::repair
