/** @file Tests for the §5.2/§6.4 extensibility hooks: user classifier
 * rules and user-registered repair templates. */

#include <gtest/gtest.h>

#include "cir/parser.h"
#include "cir/printer.h"
#include "cir/sema.h"
#include "repair/edit.h"
#include "repair/localizer.h"
#include "repair/search.h"

namespace heterogen::repair {
namespace {

using hls::ErrorCategory;

class ExtensibilityTest : public ::testing::Test
{
  protected:
    void TearDown() override { clearClassifierKeywords(); }
};

TEST_F(ExtensibilityTest, UserKeywordRuleClassifiesNewDiagnostics)
{
    const char *msg = "ERROR: [FROB 1-1] frobnication unit exhausted";
    EXPECT_FALSE(classifyMessage(msg).has_value());
    addClassifierKeyword("frobnication",
                         ErrorCategory::LoopParallelization);
    auto category = classifyMessage(msg);
    ASSERT_TRUE(category.has_value());
    EXPECT_EQ(*category, ErrorCategory::LoopParallelization);
}

TEST_F(ExtensibilityTest, UserRulesTakePrecedence)
{
    // Built-ins would say DynamicDataStructures for "recursive"; a user
    // rule keyed on a more specific phrase wins because it runs first.
    addClassifierKeyword("co-recursive scheduling",
                         ErrorCategory::TopFunction);
    auto category = classifyMessage(
        "co-recursive scheduling conflict in the design");
    ASSERT_TRUE(category.has_value());
    EXPECT_EQ(*category, ErrorCategory::TopFunction);
}

TEST_F(ExtensibilityTest, RegisteredTemplateParticipatesInSearch)
{
    // A toy "matrix partitioning" edit (the extension §6.4 names):
    // rename the kernel's first parameter — observable in the output.
    static bool applied = false;
    applied = false;
    if (!EditRegistry::instance().find("matrix_partition($a1:arr)")) {
        EditTemplate custom;
        custom.name = "matrix_partition($a1:arr)";
        custom.categories = {ErrorCategory::DataflowOptimization};
        custom.performance_improving = true;
        custom.apply = [](RepairContext &ctx) {
            applied = true;
            // Benign marker: add a global the printer will show.
            if (ctx.tu.findGlobal("__matrix_partition_marker"))
                return false;
            ctx.tu.globals.push_back(std::make_unique<cir::DeclStmt>(
                cir::Type::intType(), "__matrix_partition_marker",
                std::make_unique<cir::IntLit>(1)));
            return true;
        };
        EditRegistry::registerTemplate(std::move(custom));
    }
    ASSERT_NE(EditRegistry::instance().find(
                  "matrix_partition($a1:arr)"),
              nullptr);
    EXPECT_THROW(EditRegistry::registerTemplate(EditTemplate{
                     "matrix_partition($a1:arr)", {}, {}, false,
                     [](RepairContext &) { return false; }}),
                 FatalError)
        << "duplicate names are rejected";

    // The performance phase picks the new template up automatically.
    auto tu = cir::parse(R"(
        int kernel(int a[16]) {
            int acc = 0;
            for (int i = 0; i < 16; i++) { acc += a[i]; }
            return acc;
        }
    )");
    cir::analyzeOrDie(*tu);
    fuzz::TestSuite suite;
    suite.add({interp::KernelArg::ofInts(std::vector<long>(16, 2))});
    interp::ValueProfile profile;
    SearchOptions options;
    options.budget_minutes = 300;
    auto result = repairSearch(*tu, "kernel", *tu,
                               hls::HlsConfig::forTop("kernel"), suite,
                               profile, options);
    EXPECT_TRUE(result.hls_compatible);
    EXPECT_TRUE(applied);
    EXPECT_NE(cir::print(*result.program)
                  .find("__matrix_partition_marker"),
              std::string::npos);
}

TEST_F(ExtensibilityTest, RegistryExposesDependenceStructure)
{
    const auto &registry = EditRegistry::instance();
    // Spot-check the Figure 7c edges.
    const EditTemplate *stream_static =
        registry.find("stream_static($f1:stream,$s1:struct)");
    ASSERT_NE(stream_static, nullptr);
    ASSERT_EQ(stream_static->requires_edits.size(), 1u);
    EXPECT_EQ(stream_static->requires_edits[0],
              "constructor($s1:struct)");
    const EditTemplate *inst_update =
        registry.find("inst_update($s1:struct)");
    ASSERT_NE(inst_update, nullptr);
    EXPECT_EQ(inst_update->requires_edits[0], "flatten($s1:struct)");
    // Dependence-aware enumeration respects the edges.
    auto none = registry.applicable(ErrorCategory::StructAndUnion, {});
    for (const auto *t : none) {
        EXPECT_TRUE(t->requires_edits.empty())
            << t->name << " offered before its dependences";
    }
    auto after = registry.applicable(ErrorCategory::StructAndUnion,
                                     {"constructor($s1:struct)"});
    bool offers_stream_static = false;
    for (const auto *t : after)
        offers_stream_static |= t->name == stream_static->name;
    EXPECT_TRUE(offers_stream_static);
}

} // namespace
} // namespace heterogen::repair
