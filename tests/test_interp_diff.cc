/**
 * @file
 * Differential harness proving the bytecode engine bit-identical to the
 * tree walker (docs/INTERP.md).
 *
 * Every program here runs under both engines with private observation
 * sinks, and EVERY observable is compared: outcome (return value, out
 * args, trap message), step count, modeled CPU cycles, branch coverage,
 * value-range profile, per-loop cycle attribution, and the full ordered
 * branch-event log. Inputs come from the ten evaluation subjects (with
 * fuzzer-generated suites), their manual HLS ports, all 1000
 * forum-corpus repro snippets across argument seeds, and a randomized
 * program generator — plus directed trap-path cases and a self-test
 * that the differential engine localizes an injected divergence.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cir/parser.h"
#include "cir/sema.h"
#include "fuzz/fuzzer.h"
#include "interp/bytecode/bytecode.h"
#include "interp/interp.h"
#include "subjects/forum_corpus.h"
#include "subjects/subjects.h"
#include "support/rng.h"

namespace heterogen::interp {
namespace {

using cir::parse;

/** Everything observable from one run, collected into private sinks. */
struct Observation
{
    RunResult result;
    CoverageMap coverage;
    ValueProfile profile;
    LoopProfile loops;
    BranchEventLog branch_log;
};

Observation
observe(Interpreter &interp, const std::string &fn,
        const std::vector<KernelArg> &args, EngineKind engine,
        uint64_t max_steps)
{
    Observation o;
    RunOptions opts;
    opts.engine = engine;
    opts.max_steps = max_steps;
    opts.coverage = &o.coverage;
    opts.profile = &o.profile;
    opts.loop_profile = &o.loops;
    opts.branch_log = &o.branch_log;
    o.result = interp.run(fn, args, opts);
    return o;
}

/**
 * Run `fn(args)` on the tree walker and the bytecode VM and assert
 * every observable matches. `label` names the case in failures.
 */
void
expectEnginesAgree(Interpreter &interp, const std::string &fn,
                   const std::vector<KernelArg> &args,
                   const std::string &label,
                   uint64_t max_steps = 2'000'000)
{
    Observation walk =
        observe(interp, fn, args, EngineKind::TreeWalk, max_steps);
    Observation vm =
        observe(interp, fn, args, EngineKind::Bytecode, max_steps);

    EXPECT_EQ(walk.result.ok, vm.result.ok) << label;
    EXPECT_EQ(walk.result.trap, vm.result.trap) << label;
    EXPECT_EQ(walk.result.steps, vm.result.steps) << label;
    EXPECT_EQ(walk.result.cycles, vm.result.cycles) << label;
    EXPECT_EQ(walk.result.has_ret, vm.result.has_ret) << label;
    EXPECT_TRUE(walk.result.ret == vm.result.ret) << label;
    EXPECT_TRUE(walk.result.out_args == vm.result.out_args) << label;
    EXPECT_TRUE(walk.coverage == vm.coverage) << label;
    EXPECT_TRUE(walk.profile == vm.profile) << label;
    EXPECT_TRUE(walk.loops == vm.loops) << label;
    ASSERT_EQ(walk.branch_log.events.size(), vm.branch_log.events.size())
        << label;
    for (size_t i = 0; i < walk.branch_log.events.size(); ++i) {
        ASSERT_TRUE(walk.branch_log.events[i] == vm.branch_log.events[i])
            << label << " at branch event " << i;
    }

    // The differential engine must reach the same verdict.
    RunOptions diff;
    diff.engine = EngineKind::Differential;
    diff.max_steps = max_steps;
    RunResult both = interp.run(fn, args, diff);
    EXPECT_EQ(both.divergence, "") << label;
}

/**
 * The harness proves nothing if the compiler silently bailed and the
 * "bytecode" runs fell back to the walker: require compilation.
 */
void
expectCompiles(const cir::TranslationUnit &tu, const std::string &label)
{
    std::string reason;
    auto program = bytecode::compileProgram(tu, &reason);
    ASSERT_NE(program, nullptr)
        << label << ": bytecode compile bailed: " << reason;
}

/** Deterministic argument vector for a function's parameter list. */
std::vector<KernelArg>
argsFor(const cir::FunctionDecl &fn, uint64_t seed)
{
    Rng rng(seed);
    std::vector<KernelArg> args;
    for (const auto &p : fn.params) {
        if (p.type->isArray() || p.type->isPointer() ||
            p.type->isStream()) {
            bool flt = p.type->element() && p.type->element()->isFloating();
            long n = p.type->isArray() &&
                             p.type->arraySize() != cir::kUnknownArraySize
                         ? p.type->arraySize()
                         : long(4 + rng.below(5));
            if (flt) {
                std::vector<double> xs;
                for (long k = 0; k < n; ++k)
                    xs.push_back(double(rng.range(-8, 8)) * 0.5);
                args.push_back(KernelArg::ofFloats(std::move(xs)));
            } else {
                std::vector<long> xs;
                for (long k = 0; k < n; ++k)
                    xs.push_back(rng.range(-16, 16));
                args.push_back(KernelArg::ofInts(std::move(xs)));
            }
        } else if (p.type->isFloating()) {
            args.push_back(
                KernelArg::ofFloat(double(rng.range(-6, 6)) * 0.75));
        } else {
            args.push_back(KernelArg::ofInt(rng.range(-4, 9)));
        }
    }
    return args;
}

// --- the ten subjects + their fuzzer-generated suites --------------------

fuzz::FuzzOptions
smallCampaign(uint64_t seed)
{
    fuzz::FuzzOptions options;
    options.rng_seed = seed;
    options.max_executions = 120;
    options.mutations_per_input = 8;
    options.min_suite_size = 12;
    options.max_steps_per_run = 200'000;
    return options;
}

TEST(InterpDiff, SubjectsBitIdenticalOverFuzzedSuites)
{
    for (const auto &subject : subjects::allSubjects()) {
        auto tu = parse(subject.source);
        cir::SemaResult sema = cir::analyzeOrDie(*tu);
        expectCompiles(*tu, subject.id);

        fuzz::FuzzOptions options = smallCampaign(subject.fuzz_seed);
        options.host_function = subject.host;
        options.engine = EngineKind::TreeWalk;
        fuzz::FuzzResult reference =
            fuzz::fuzzKernel(*tu, subject.kernel, sema, options);

        Interpreter interp(*tu);
        for (const auto &test : reference.suite.cases()) {
            expectEnginesAgree(interp, subject.kernel, test.args,
                               subject.id + "/" + test.str(), 200'000);
        }
        for (const auto &args : subject.existing_tests) {
            expectEnginesAgree(interp, subject.kernel, args,
                               subject.id + "/existing", 200'000);
        }
    }
}

TEST(InterpDiff, FuzzCampaignsIdenticalAcrossEngines)
{
    // The whole campaign — corpus decisions, coverage, simulated clock —
    // must come out the same when every execution runs on the VM.
    for (const auto &subject : subjects::allSubjects()) {
        auto tu = parse(subject.source);
        cir::SemaResult sema = cir::analyzeOrDie(*tu);

        fuzz::FuzzOptions options = smallCampaign(subject.fuzz_seed);
        options.host_function = subject.host;
        options.engine = EngineKind::TreeWalk;
        fuzz::FuzzResult walk =
            fuzz::fuzzKernel(*tu, subject.kernel, sema, options);

        options.engine = EngineKind::Bytecode;
        fuzz::FuzzResult vm =
            fuzz::fuzzKernel(*tu, subject.kernel, sema, options);

        ASSERT_EQ(walk.suite.size(), vm.suite.size()) << subject.id;
        for (size_t i = 0; i < walk.suite.size(); ++i)
            EXPECT_TRUE(walk.suite[i].args == vm.suite[i].args)
                << subject.id << " case " << i;
        EXPECT_TRUE(walk.coverage == vm.coverage) << subject.id;
        EXPECT_EQ(walk.executions, vm.executions) << subject.id;
        EXPECT_EQ(walk.sim_minutes, vm.sim_minutes) << subject.id;
        EXPECT_EQ(walk.last_progress_minutes, vm.last_progress_minutes)
            << subject.id;
    }
}

TEST(InterpDiff, ManualPortsBitIdentical)
{
    for (const auto &subject : subjects::allSubjects()) {
        if (subject.manual_source.empty())
            continue;
        auto tu = parse(subject.manual_source);
        cir::analyzeOrDie(*tu);
        expectCompiles(*tu, subject.id + "/manual");

        const cir::FunctionDecl *kernel =
            tu->findFunction(subject.kernel);
        ASSERT_NE(kernel, nullptr) << subject.id;
        Interpreter interp(*tu);
        for (const auto &args : subject.existing_tests) {
            expectEnginesAgree(interp, subject.kernel, args,
                               subject.id + "/manual/existing", 200'000);
        }
        for (uint64_t seed = 1; seed <= 4; ++seed) {
            expectEnginesAgree(interp, subject.kernel,
                               argsFor(*kernel, seed),
                               subject.id + "/manual/seed" +
                                   std::to_string(seed),
                               200'000);
        }
    }
}

// --- the 1000-snippet forum corpus ---------------------------------------

TEST(InterpDiff, ForumCorpusSnippetsBitIdentical)
{
    auto posts = subjects::generateForumCorpus(1000, 2022);
    ASSERT_EQ(posts.size(), 1000u);
    int executed = 0;
    for (const auto &post : posts) {
        auto tu = parse(post.snippet);
        cir::SemaResult sema = cir::analyze(*tu);
        if (!sema.errors.empty())
            continue; // snippets illustrate errors; some are unanalyzable
        const cir::FunctionDecl *kernel = tu->findFunction("kernel");
        if (!kernel)
            continue;
        expectCompiles(*tu, "post " + std::to_string(post.post_id));
        Interpreter interp(*tu);
        for (uint64_t seed = 1; seed <= 3; ++seed) {
            expectEnginesAgree(interp, "kernel",
                               argsFor(*kernel, seed),
                               "post " + std::to_string(post.post_id) +
                                   " seed " + std::to_string(seed),
                               100'000);
            ++executed;
        }
        if (HasFatalFailure())
            return;
    }
    // The corpus is supposed to exercise the engines, not skip them.
    EXPECT_GT(executed, 2000);
}

// --- randomized programs --------------------------------------------------

/**
 * Generates always-terminating kernels over ints, floats and a fixed
 * array: nested bounded loops, if/else, while, logical operators,
 * ternaries and guarded division — the constructs whose step/cycle
 * accounting is easiest to get subtly wrong in a compiler.
 */
class DiffProgramGen
{
  public:
    explicit DiffProgramGen(uint64_t seed) : rng_(seed) {}

    std::string
    generate()
    {
        std::ostringstream os;
        os << "int kernel(int a[6], int x, int y) {\n"
           << "    int acc = y;\n"
           << "    float fac = 1.5;\n";
        int stmts = 2 + int(rng_.below(5));
        for (int i = 0; i < stmts; ++i)
            emitStmt(os);
        os << "    return acc + (int)fac;\n}\n";
        return os.str();
    }

  private:
    std::string
    operand()
    {
        switch (rng_.below(5)) {
          case 0: return "x";
          case 1: return "y";
          case 2: return "acc";
          case 3: return "a[" + std::to_string(rng_.below(6)) + "]";
          default: return std::to_string(rng_.range(-7, 7));
        }
    }

    std::string
    expr()
    {
        static const char *ops[] = {"+", "-", "*", "&", "|", "^"};
        std::string e = operand();
        int terms = 1 + int(rng_.below(3));
        for (int i = 0; i < terms; ++i)
            e += std::string(" ") + ops[rng_.below(6)] + " " + operand();
        return e;
    }

    std::string
    cond()
    {
        static const char *rel[] = {"<", ">", "==", "!=", "<=", ">="};
        std::string c = operand() + " " + rel[rng_.below(6)] + " " +
                        operand();
        if (rng_.below(3) == 0)
            c += (rng_.below(2) ? " && " : " || ") + operand() + " " +
                 rel[rng_.below(6)] + " " + operand();
        return c;
    }

    void
    emitStmt(std::ostringstream &os)
    {
        switch (rng_.below(6)) {
          case 0:
            os << "    acc = " << expr() << ";\n";
            break;
          case 1:
            os << "    a[" << rng_.below(6) << "] = " << expr()
               << ";\n";
            break;
          case 2:
            os << "    if (" << cond() << ") { acc += " << expr()
               << "; } else { acc -= " << operand() << "; }\n";
            break;
          case 3: {
            int n = 2 + int(rng_.below(6));
            os << "    for (int i = 0; i < " << n
               << "; i++) { acc += a[i % 6] + i; }\n";
            break;
          }
          case 4:
            os << "    acc = (" << cond() << ") ? " << operand()
               << " : " << operand() << ";\n";
            break;
          default:
            os << "    if (" << operand()
               << " != 0) { acc = acc / (" << operand()
               << " | 1); }\n"
               << "    fac = fac * 1.25 + " << rng_.below(4) << ";\n";
            break;
        }
    }

    Rng rng_;
};

TEST(InterpDiff, RandomProgramsBitIdentical)
{
    for (uint64_t seed = 1; seed <= 150; ++seed) {
        DiffProgramGen gen(seed);
        std::string src = gen.generate();
        auto tu = parse(src);
        cir::analyzeOrDie(*tu);
        expectCompiles(*tu, "gen seed " + std::to_string(seed));
        Interpreter interp(*tu);
        for (uint64_t arg_seed = 1; arg_seed <= 2; ++arg_seed) {
            Rng rng(seed * 100 + arg_seed);
            std::vector<long> a;
            for (int k = 0; k < 6; ++k)
                a.push_back(rng.range(-20, 20));
            std::vector<KernelArg> args = {
                KernelArg::ofInts(std::move(a)),
                KernelArg::ofInt(rng.range(-10, 10)),
                KernelArg::ofInt(rng.range(-10, 10)),
            };
            expectEnginesAgree(interp, "kernel", args,
                               "gen " + std::to_string(seed) + "/" +
                                   std::to_string(arg_seed) + "\n" + src);
        }
        if (HasFatalFailure())
            return;
    }
}

// --- directed trap paths --------------------------------------------------

TEST(InterpDiff, DivisionByZeroTrapsIdentically)
{
    auto tu = parse(R"(
        int kernel(int a[4], int d) {
            int acc = 0;
            for (int i = 0; i < 4; i++) { acc += a[i]; }
            return acc / d;
        }
    )");
    cir::analyzeOrDie(*tu);
    Interpreter interp(*tu);
    std::vector<KernelArg> args = {KernelArg::ofInts({1, 2, 3, 4}),
                                   KernelArg::ofInt(0)};
    expectEnginesAgree(interp, "kernel", args, "div by zero");
    RunResult r = interp.run("kernel", args);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.trap, "integer division by zero");
}

TEST(InterpDiff, OutOfBoundsReadTrapsIdentically)
{
    auto tu = parse(R"(
        int kernel(int n) {
            int buf[4];
            for (int i = 0; i < 4; i++) { buf[i] = i; }
            return buf[n];
        }
    )");
    cir::analyzeOrDie(*tu);
    Interpreter interp(*tu);
    expectEnginesAgree(interp, "kernel", {KernelArg::ofInt(17)},
                       "oob read");
    RunResult r = interp.run("kernel", {KernelArg::ofInt(17)});
    EXPECT_FALSE(r.ok);
}

TEST(InterpDiff, OutOfBoundsWriteTrapsIdentically)
{
    auto tu = parse(R"(
        int kernel(int n) {
            int buf[4];
            buf[n] = 9;
            return 0;
        }
    )");
    cir::analyzeOrDie(*tu);
    Interpreter interp(*tu);
    expectEnginesAgree(interp, "kernel", {KernelArg::ofInt(-2)},
                       "oob write");
    RunResult r = interp.run("kernel", {KernelArg::ofInt(-2)});
    EXPECT_FALSE(r.ok);
}

TEST(InterpDiff, UninitializedReadBehavesIdentically)
{
    // Reading an Unset cell is defined behaviour in the memory model;
    // both engines must agree on the resulting value and profile.
    auto tu = parse(R"(
        int kernel(int n) {
            int buf[4];
            int x = buf[n & 3];
            return x + n;
        }
    )");
    cir::analyzeOrDie(*tu);
    Interpreter interp(*tu);
    expectEnginesAgree(interp, "kernel", {KernelArg::ofInt(2)},
                       "uninitialized read");
}

TEST(InterpDiff, StepLimitLeavesIdenticalPartialCoverage)
{
    auto tu = parse(R"(
        int kernel(int n) {
            int acc = 0;
            while (1) {
                acc += n;
                if (acc > 1000000) { break; }
                if (acc < -1000000) { break; }
            }
            return acc;
        }
    )");
    cir::analyzeOrDie(*tu);
    Interpreter interp(*tu);
    // n = 0 never terminates: both engines must trap at the exact same
    // step with the same partial coverage and cycle count.
    expectEnginesAgree(interp, "kernel", {KernelArg::ofInt(0)},
                       "step limit", 5'000);
    RunResult r = interp.run("kernel", {KernelArg::ofInt(0)},
                             [] {
                                 RunOptions o;
                                 o.max_steps = 5'000;
                                 return o;
                             }());
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.trap,
              "step limit exceeded (possible non-termination)");
    EXPECT_EQ(r.steps, 5'001u);
}

TEST(InterpDiff, CallDepthTrapsIdentically)
{
    auto tu = parse(R"(
        int down(int n) { return down(n + 1); }
        int kernel(int n) { return down(n); }
    )");
    cir::analyzeOrDie(*tu);
    Interpreter interp(*tu);
    expectEnginesAgree(interp, "kernel", {KernelArg::ofInt(0)},
                       "call depth");
    RunResult r = interp.run("kernel", {KernelArg::ofInt(0)});
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.trap, "call depth exceeded (runaway recursion?)");
}

// --- the differential engine's own reporting ------------------------------

TEST(InterpDiff, DifferentialEngineReportsFirstDivergingSite)
{
    auto tu = parse(R"(
        int kernel(int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) { acc += i; }
            }
            return acc;
        }
    )");
    cir::analyzeOrDie(*tu);
    Interpreter interp(*tu);
    RunOptions opts;
    opts.engine = EngineKind::Differential;

    // Healthy engines: no divergence on any input.
    for (int n = 0; n <= 4; ++n) {
        RunResult clean =
            interp.run("kernel", {KernelArg::ofInt(n)}, opts);
        EXPECT_TRUE(clean.ok);
        EXPECT_EQ(clean.divergence, "") << "n=" << n;
    }

    // Inject a single-opcode fault: the VM charges one extra cycle at
    // branch record #2. The harness must localize exactly that event.
    bytecode::testing::corrupt_branch_event = 2;
    RunResult hurt = interp.run("kernel", {KernelArg::ofInt(4)}, opts);
    bytecode::testing::corrupt_branch_event = -1;

    EXPECT_TRUE(hurt.ok); // the reference side still succeeded
    ASSERT_NE(hurt.divergence, "");
    EXPECT_NE(hurt.divergence.find("branch event 2"), std::string::npos)
        << hurt.divergence;
    EXPECT_NE(hurt.divergence.find("cycle"), std::string::npos)
        << hurt.divergence;

    // The corruption is scoped to the hook: clean again afterwards.
    RunResult after = interp.run("kernel", {KernelArg::ofInt(4)}, opts);
    EXPECT_EQ(after.divergence, "");
}

TEST(InterpDiff, DifferentialForwardsReferenceObservables)
{
    auto tu = parse(R"(
        int kernel(int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) { acc += i; }
            return acc;
        }
    )");
    cir::analyzeOrDie(*tu);
    Interpreter interp(*tu);

    Observation walk = observe(interp, "kernel", {KernelArg::ofInt(5)},
                               EngineKind::TreeWalk, 100'000);
    Observation diff = observe(interp, "kernel", {KernelArg::ofInt(5)},
                               EngineKind::Differential, 100'000);

    EXPECT_TRUE(diff.result.ok);
    EXPECT_EQ(diff.result.divergence, "");
    EXPECT_TRUE(diff.result.ret == walk.result.ret);
    EXPECT_EQ(diff.result.steps, walk.result.steps);
    EXPECT_EQ(diff.result.cycles, walk.result.cycles);
    EXPECT_TRUE(diff.coverage == walk.coverage);
    EXPECT_TRUE(diff.profile == walk.profile);
    EXPECT_TRUE(diff.loops == walk.loops);
    ASSERT_EQ(diff.branch_log.events.size(),
              walk.branch_log.events.size());
}

// --- engine selection plumbing -------------------------------------------

TEST(InterpDiff, ParseEngineNameRoundTrips)
{
    EngineKind kind = EngineKind::TreeWalk;
    EXPECT_TRUE(parseEngineName("bytecode", &kind));
    EXPECT_EQ(kind, EngineKind::Bytecode);
    EXPECT_TRUE(parseEngineName("differential", &kind));
    EXPECT_EQ(kind, EngineKind::Differential);
    EXPECT_TRUE(parseEngineName("tree_walk", &kind));
    EXPECT_EQ(kind, EngineKind::TreeWalk);

    kind = EngineKind::Bytecode;
    EXPECT_TRUE(parseEngineName("", &kind));
    EXPECT_EQ(kind, EngineKind::Bytecode) << "empty keeps the value";
    EXPECT_FALSE(parseEngineName("jit", &kind));
    EXPECT_EQ(kind, EngineKind::Bytecode) << "unknown keeps the value";

    EXPECT_STREQ(engineName(EngineKind::TreeWalk), "tree_walk");
    EXPECT_STREQ(engineName(EngineKind::Bytecode), "bytecode");
    EXPECT_STREQ(engineName(EngineKind::Differential), "differential");
}

} // namespace
} // namespace heterogen::interp
