/** @file Candidate-memo tests: fingerprint sensitivity, cache hits on
 * revisits, and exact hit/miss accounting in SearchResult. */

#include <gtest/gtest.h>

#include "cir/parser.h"
#include "cir/printer.h"
#include "cir/sema.h"
#include "core/heterogen.h"
#include "repair/memo.h"
#include "support/strings.h"

namespace heterogen::repair {
namespace {

cir::TuPtr
program(const std::string &src)
{
    auto tu = cir::parse(src);
    cir::analyzeOrDie(*tu);
    return tu;
}

// --- fingerprints --------------------------------------------------------

TEST(CandidateFingerprint, IdenticalProgramsAgree)
{
    auto a = program("int kernel(int x) { return x + 1; }");
    auto b = program("int kernel(int x) { return x + 1; }");
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    EXPECT_EQ(candidateFingerprint(*a, config),
              candidateFingerprint(*b, config));
    EXPECT_EQ(candidateFingerprint(*a, config),
              candidateFingerprint(*a->clone(), config));
}

TEST(CandidateFingerprint, OneTokenChangeMisses)
{
    auto a = program("int kernel(int x) { return x + 1; }");
    auto b = program("int kernel(int x) { return x + 2; }");
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    EXPECT_NE(candidateFingerprint(*a, config),
              candidateFingerprint(*b, config));
}

TEST(CandidateFingerprint, ConfigChangeMisses)
{
    auto tu = program("int kernel(int x) { return x + 1; }");
    hls::HlsConfig base = hls::HlsConfig::forTop("kernel");

    hls::HlsConfig other_top = base;
    other_top.top_function = "main";
    EXPECT_NE(candidateFingerprint(*tu, base),
              candidateFingerprint(*tu, other_top));

    hls::HlsConfig other_clock = base;
    other_clock.clock_mhz = 300.0;
    EXPECT_NE(candidateFingerprint(*tu, base),
              candidateFingerprint(*tu, other_clock));

    hls::HlsConfig other_device = base;
    other_device.device = "xc7z020";
    EXPECT_NE(candidateFingerprint(*tu, base),
              candidateFingerprint(*tu, other_device));
}

TEST(CandidateFingerprint, StreamDepthChangeMisses)
{
    // Regression: the fifo depth is part of the candidate identity.
    // Two candidates differing only in config.stream_depth must never
    // share a verdict — a depth-2 deadlock verdict served to a depth-64
    // candidate would mask the stream_depth repair entirely.
    auto tu = program("int kernel(int x) { return x + 1; }");
    hls::HlsConfig shallow = hls::HlsConfig::forTop("kernel");
    shallow.stream_depth = 2;
    hls::HlsConfig deep = shallow;
    deep.stream_depth = 64;
    EXPECT_NE(candidateFingerprint(*tu, shallow),
              candidateFingerprint(*tu, deep));

    CandidateMemo memo;
    hls::CompileResult deadlocked;
    deadlocked.ok = false;
    memo.storeCompile(candidateFingerprint(*tu, shallow), deadlocked);
    EXPECT_TRUE(
        memo.findCompile(candidateFingerprint(*tu, shallow)).has_value());
    EXPECT_FALSE(
        memo.findCompile(candidateFingerprint(*tu, deep)).has_value());
}

// --- the memo itself -----------------------------------------------------

TEST(CandidateMemo, CompileRoundTripWithExactCounters)
{
    CandidateMemo memo;
    hls::CompileResult compiled;
    compiled.ok = true;
    compiled.synth_minutes = 12.5;
    compiled.loc = 42;

    EXPECT_FALSE(memo.findCompile("fp-a").has_value());
    memo.storeCompile("fp-a", compiled);
    auto hit = memo.findCompile("fp-a");
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->ok);
    EXPECT_DOUBLE_EQ(hit->synth_minutes, 12.5);
    EXPECT_EQ(hit->loc, 42);
    EXPECT_FALSE(memo.findCompile("fp-b").has_value());

    EXPECT_EQ(memo.stats().compile_hits, 1);
    EXPECT_EQ(memo.stats().compile_misses, 2);
    EXPECT_EQ(memo.stats().hits(), 1);
    EXPECT_EQ(memo.stats().misses(), 2);
    EXPECT_DOUBLE_EQ(memo.stats().hitRate(), 1.0 / 3.0);
}

TEST(CandidateMemo, DifftestRoundTripWithExactCounters)
{
    CandidateMemo memo;
    DiffTestResult fitness;
    fitness.total = 10;
    fitness.identical = 9;
    fitness.failing = {4};
    fitness.sim_minutes = 1.25;

    EXPECT_FALSE(memo.findDiffTest("fp-a").has_value());
    memo.storeDiffTest("fp-a", fitness);
    auto hit = memo.findDiffTest("fp-a");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->identical, 9);
    EXPECT_EQ(hit->failing, std::vector<int>{4});

    EXPECT_EQ(memo.stats().difftest_hits, 1);
    EXPECT_EQ(memo.stats().difftest_misses, 1);
}

TEST(CandidateMemo, CompileAndDifftestAreIndependentSlots)
{
    CandidateMemo memo;
    hls::CompileResult compiled;
    compiled.ok = true;
    memo.storeCompile("fp", compiled);
    // The same fingerprint has a compile outcome but no difftest yet.
    EXPECT_TRUE(memo.findCompile("fp").has_value());
    EXPECT_FALSE(memo.findDiffTest("fp").has_value());
    EXPECT_EQ(memo.size(), 1u);
}

TEST(CandidateMemo, ClearResetsEntriesAndStats)
{
    CandidateMemo memo;
    memo.storeCompile("fp", hls::CompileResult{});
    (void)memo.findCompile("fp");
    memo.clear();
    EXPECT_EQ(memo.size(), 0u);
    EXPECT_EQ(memo.stats().hits(), 0);
    EXPECT_EQ(memo.stats().misses(), 0);
    EXPECT_FALSE(memo.findCompile("fp").has_value());
}

// --- memo inside the search ----------------------------------------------

core::HeteroGenReport
runPipeline(const std::string &src, bool use_memo)
{
    core::HeteroGen engine(src);
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.fuzz.max_executions = 400;
    opts.fuzz.min_suite_size = 12;
    opts.search.difftest_sample = 10;
    opts.search.use_memo = use_memo;
    return engine.run(opts);
}

/** A subject whose repair must backtrack: the duplicated-buffer fix for
 * the dataflow-shared-array error changes behaviour, so the search
 * reverts to an already-evaluated candidate. */
const char *kBacktracking = R"(
    void bump(int data[16]) {
        for (int i = 0; i < 16; i++) { data[i] = data[i] + 1; }
    }
    int kernel(int seedv) {
        #pragma HLS dataflow
        int data[16];
        for (int i = 0; i < 16; i++) { data[i] = seedv + i; }
        bump(data);
        bump(data);
        int acc = 0;
        for (int i = 0; i < 16; i++) { acc += data[i]; }
        return acc;
    }
)";

TEST(SearchMemo, RevisitedCandidatesHitTheCache)
{
    auto report = runPipeline(kBacktracking, /*use_memo=*/true);
    ASSERT_TRUE(report.ok());
    EXPECT_GT(report.search.memo.hits(), 0)
        << "backtracking must revisit at least one candidate";
}

TEST(SearchMemo, CountersMatchTraceExactly)
{
    auto report = runPipeline(kBacktracking, /*use_memo=*/true);
    const auto &search = report.search;

    int compile_fresh = 0;
    int compile_memo = 0;
    int difftests = 0;
    for (const auto &step : search.trace) {
        if (startsWith(step.action, "compile:memo-"))
            compile_memo += 1;
        else if (startsWith(step.action, "compile:"))
            compile_fresh += 1;
        if (startsWith(step.action, "difftest:"))
            difftests += 1;
    }
    // Every fresh compile is a miss and a toolchain invocation; every
    // memo answer is a hit.
    EXPECT_EQ(search.memo.compile_misses, compile_fresh);
    EXPECT_EQ(search.memo.compile_misses, search.full_hls_invocations);
    EXPECT_EQ(search.memo.compile_hits, compile_memo);
    // Every difftest trace entry consulted the memo exactly once.
    EXPECT_EQ(search.memo.difftest_hits + search.memo.difftest_misses,
              difftests);
}

TEST(SearchMemo, DisabledMemoReportsZeroCounters)
{
    auto report = runPipeline(kBacktracking, /*use_memo=*/false);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.search.memo.hits(), 0);
    EXPECT_EQ(report.search.memo.misses(), 0);
}

TEST(SearchMemo, MemoDoesNotChangeTheRepairOutcome)
{
    auto with = runPipeline(kBacktracking, /*use_memo=*/true);
    auto without = runPipeline(kBacktracking, /*use_memo=*/false);
    ASSERT_TRUE(with.ok());
    ASSERT_TRUE(without.ok());
    EXPECT_EQ(cir::print(*with.search.program),
              cir::print(*without.search.program));
    EXPECT_DOUBLE_EQ(with.search.pass_ratio, without.search.pass_ratio);
    EXPECT_EQ(with.search.applied_order, without.search.applied_order);
}

} // namespace
} // namespace heterogen::repair
