/** @file Fault-injection layer tests: spec-string parsing, deterministic
 * hash draws, RunContext charge/counter side effects, the retry loop,
 * per-site toolchain behaviour, and the pipeline-level properties the
 * layer is contractually bound to — a probability-0 plan is
 * bit-identical to no plan, a faulty run that still reports ok()
 * produced exactly the fault-free artifact, results are invariant to
 * host thread counts, and permanent failures degrade instead of crash.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "cir/parser.h"
#include "core/heterogen.h"
#include "fuzz/testsuite.h"
#include "hls/compiler.h"
#include "hls/synth_check.h"
#include "interp/kernel_arg.h"
#include "repair/difftest.h"
#include "support/diagnostics.h"
#include "support/faults.h"
#include "support/run_context.h"

namespace heterogen {
namespace {

// --- spec-string parsing -------------------------------------------------

TEST(FaultPlanParse, ParsesTheDocumentedSpec)
{
    FaultPlan plan = FaultPlan::parse(
        "hls.compile:0.1:transient,difftest.cosim:0.05:timeout", 9);
    EXPECT_EQ(plan.seed, 9u);
    ASSERT_EQ(plan.rules.size(), 2u);
    EXPECT_EQ(plan.rules[0].site, "hls.compile");
    EXPECT_DOUBLE_EQ(plan.rules[0].probability, 0.1);
    EXPECT_EQ(plan.rules[0].kind, FaultKind::Transient);
    EXPECT_DOUBLE_EQ(plan.rules[0].latencyMinutes(),
                     defaultFaultLatency(FaultKind::Transient));
    EXPECT_EQ(plan.rules[1].site, "difftest.cosim");
    EXPECT_EQ(plan.rules[1].kind, FaultKind::Timeout);
    ASSERT_NE(plan.ruleFor("difftest.cosim"), nullptr);
    EXPECT_EQ(plan.ruleFor("hls.synth_check"), nullptr);
}

TEST(FaultPlanParse, ParsesExplicitLatencyAndToleratesWhitespace)
{
    FaultPlan plan =
        FaultPlan::parse(" hls.synth_check : 0.5 : crash : 3.5 ,");
    ASSERT_EQ(plan.rules.size(), 1u);
    EXPECT_EQ(plan.rules[0].kind, FaultKind::Crash);
    EXPECT_DOUBLE_EQ(plan.rules[0].latencyMinutes(), 3.5);
}

TEST(FaultPlanParse, SpecRoundTrips)
{
    const std::string spec =
        "hls.compile:0.25:transient,difftest.cosim:1:timeout:42";
    FaultPlan plan = FaultPlan::parse(spec, 3);
    EXPECT_EQ(FaultPlan::parse(plan.spec(), 3).spec(), plan.spec());
}

TEST(FaultPlanParse, EmptySpecIsAnEmptyPlan)
{
    EXPECT_TRUE(FaultPlan::parse("").empty());
    EXPECT_TRUE(FaultPlan::parse("   ").empty());
}

TEST(FaultPlanParse, RejectsMalformedSpecs)
{
    EXPECT_THROW(FaultPlan::parse("nonsense"), FatalError);
    EXPECT_THROW(FaultPlan::parse("hls.compile:0.1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("bogus.site:0.1:transient"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("hls.compile:0.1:sometimes"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("hls.compile:1.5:transient"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("hls.compile:-0.1:transient"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("hls.compile:0.1:transient:-2"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("hls.compile:zero:transient"),
                 FatalError);
    EXPECT_THROW(
        FaultPlan::parse("hls.compile:0.1:transient:3:extra"),
        FatalError);
}

TEST(FaultPlanParse, FromEnvReadsSpecAndSeed)
{
    setenv("HETEROGEN_FAULTS", "hls.compile:0.2:crash", 1);
    setenv("HETEROGEN_FAULT_SEED", "77", 1);
    FaultPlan plan = FaultPlan::fromEnv();
    unsetenv("HETEROGEN_FAULTS");
    unsetenv("HETEROGEN_FAULT_SEED");
    ASSERT_EQ(plan.rules.size(), 1u);
    EXPECT_EQ(plan.seed, 77u);
    EXPECT_EQ(plan.rules[0].site, "hls.compile");
    EXPECT_TRUE(FaultPlan::fromEnv().empty());
}

// --- deterministic draws -------------------------------------------------

FaultPlan
singleRule(const std::string &site, double p, uint64_t seed = 1,
           FaultKind kind = FaultKind::Transient)
{
    FaultPlan plan;
    plan.seed = seed;
    plan.rules.push_back(FaultRule{site, p, kind, -1});
    return plan;
}

TEST(FaultDraws, ProbabilityEndpointsAreExact)
{
    FaultInjector never(singleRule("hls.compile", 0.0));
    FaultInjector always(singleRule("hls.compile", 1.0));
    for (int i = 0; i < 200; ++i) {
        EXPECT_FALSE(never.draw("hls.compile").has_value());
        EXPECT_TRUE(always.draw("hls.compile").has_value());
    }
    // Sites without a rule never fire regardless of other rules.
    EXPECT_FALSE(always.draw("difftest.cosim").has_value());
}

TEST(FaultDraws, SequencesReplayExactlyPerSeed)
{
    for (uint64_t seed : {1u, 2u, 42u}) {
        FaultInjector a(singleRule("hls.compile", 0.5, seed));
        FaultInjector b(singleRule("hls.compile", 0.5, seed));
        for (int i = 0; i < 256; ++i)
            EXPECT_EQ(a.draw("hls.compile").has_value(),
                      b.draw("hls.compile").has_value());
    }
}

TEST(FaultDraws, DifferentSeedsAndSitesGiveIndependentStreams)
{
    FaultPlan plan;
    plan.seed = 1;
    plan.rules.push_back(
        FaultRule{"hls.compile", 0.5, FaultKind::Transient, -1});
    plan.rules.push_back(
        FaultRule{"difftest.cosim", 0.5, FaultKind::Transient, -1});
    FaultInjector one(plan);
    FaultPlan other = plan;
    other.seed = 2;
    FaultInjector two(other);
    int seed_diffs = 0;
    int site_diffs = 0;
    for (int i = 0; i < 256; ++i) {
        bool a = one.draw("hls.compile").has_value();
        bool b = one.draw("difftest.cosim").has_value();
        bool c = two.draw("hls.compile").has_value();
        seed_diffs += a != c;
        site_diffs += a != b;
    }
    EXPECT_GT(seed_diffs, 0);
    EXPECT_GT(site_diffs, 0);
}

TEST(FaultDraws, FrequencyTracksProbability)
{
    FaultInjector injector(singleRule("hls.compile", 0.25, 11));
    int fired = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        fired += injector.draw("hls.compile").has_value();
    EXPECT_NEAR(double(fired) / n, 0.25, 0.03);
}

// --- RunContext side effects and the retry loop --------------------------

TEST(RunContextFaults, DrawChargesLatencyAndBumpsCounters)
{
    RunContext ctx;
    ctx.installFaults(
        singleRule("difftest.cosim", 1.0, 1, FaultKind::Timeout));
    ASSERT_TRUE(ctx.faultsEnabled());
    auto fault = ctx.drawFault("difftest.cosim");
    ASSERT_TRUE(fault.has_value());
    EXPECT_EQ(fault->kind, FaultKind::Timeout);
    EXPECT_DOUBLE_EQ(ctx.now(), defaultFaultLatency(FaultKind::Timeout));
    EXPECT_EQ(ctx.trace().root().counter("fault.injected"), 1);
    EXPECT_EQ(ctx.trace().root().counter("fault.difftest.cosim"), 1);
}

TEST(RunContextFaults, NoPlanMeansNoOpDraws)
{
    RunContext ctx;
    EXPECT_FALSE(ctx.faultsEnabled());
    EXPECT_EQ(ctx.faultPlan(), nullptr);
    EXPECT_FALSE(ctx.drawFault("hls.compile").has_value());
    EXPECT_DOUBLE_EQ(ctx.now(), 0.0);
    EXPECT_TRUE(admitFaultSite(ctx, "hls.compile"));
    EXPECT_DOUBLE_EQ(ctx.now(), 0.0);
}

TEST(RunContextFaults, RetryLoopChargesExponentialBackoffThenGivesUp)
{
    RunContext ctx;
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.backoff_minutes = 1.0;
    policy.backoff_factor = 2.0;
    ctx.installFaults(singleRule("hls.compile", 1.0), policy);

    EXPECT_FALSE(admitFaultSite(ctx, "hls.compile"));
    // 3 faults at the transient latency + backoffs of 1 and 2 minutes.
    EXPECT_DOUBLE_EQ(ctx.now(),
                     3 * defaultFaultLatency(FaultKind::Transient) +
                         1.0 + 2.0);
    EXPECT_EQ(ctx.trace().root().counter("fault.injected"), 3);
    EXPECT_EQ(ctx.trace().root().counter("fault.retries"), 2);
    EXPECT_EQ(ctx.trace().root().counter("fault.gave_up"), 1);
}

TEST(RunContextFaults, RetriesClearTransientFaults)
{
    // With p=0.5 and 6 attempts some seed must admit after >=1 retry;
    // the draws are pure hashes, so this is a fixed fact, not luck.
    bool saw_retry_success = false;
    for (uint64_t seed = 1; seed <= 20 && !saw_retry_success; ++seed) {
        RunContext ctx;
        RetryPolicy policy;
        policy.max_attempts = 6;
        policy.backoff_minutes = 0.1;
        ctx.installFaults(singleRule("hls.compile", 0.5, seed), policy);
        bool admitted = admitFaultSite(ctx, "hls.compile");
        int64_t retries = ctx.trace().root().counter("fault.retries");
        if (admitted && retries >= 1)
            saw_retry_success = true;
    }
    EXPECT_TRUE(saw_retry_success);
}

TEST(RunContextFaults, GivesUpWithoutBackoffOnceStopRequested)
{
    RunContext ctx;
    RetryPolicy policy;
    policy.max_attempts = 5;
    policy.backoff_minutes = 1.0;
    ctx.installFaults(singleRule("hls.compile", 1.0), policy);
    ctx.requestCancel();
    EXPECT_FALSE(admitFaultSite(ctx, "hls.compile"));
    // One fault latency, no backoff: retrying past a cancelled run
    // would only waste simulated minutes.
    EXPECT_DOUBLE_EQ(ctx.now(),
                     defaultFaultLatency(FaultKind::Transient));
    EXPECT_EQ(ctx.trace().root().counter("fault.retries"), 0);
    EXPECT_EQ(ctx.trace().root().counter("fault.gave_up"), 1);
}

// --- per-site toolchain behaviour ----------------------------------------

const char *kSiteKernel = "int kernel(int x) { return x + 1; }";

TEST(FaultSites, CompilerReportsToolFailureWithoutJudgingTheDesign)
{
    auto tu = cir::parse(kSiteKernel);
    RunContext ctx;
    ctx.installFaults(singleRule("hls.compile", 1.0),
                      RetryPolicy::none());
    hls::HlsToolchain tool(hls::HlsConfig::forTop("kernel"));
    hls::CompileResult r = tool.compile(ctx, *tu);
    EXPECT_TRUE(r.tool_failure);
    EXPECT_FALSE(r.ok);
    ASSERT_EQ(r.errors.size(), 1u);
    EXPECT_NE(r.errors[0].message.find("toolchain failure"),
              std::string::npos);
    // The toolchain never actually ran.
    EXPECT_EQ(ctx.trace().root().counter("hls.compiles"), 0);
    EXPECT_EQ(tool.stats().compile_invocations, 0);
}

TEST(FaultSites, SynthCheckReportsToolFailure)
{
    auto tu = cir::parse(kSiteKernel);
    RunContext ctx;
    ctx.installFaults(singleRule("hls.synth_check", 1.0),
                      RetryPolicy::none());
    auto errors = hls::checkSynthesizability(
        ctx, *tu, hls::HlsConfig::forTop("kernel"));
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].message.find("hls.synth_check"),
              std::string::npos);
    EXPECT_EQ(ctx.trace().root().counter("hls.synth_checks"), 0);
}

TEST(FaultSites, DiffTestReportsToolFailureWithZeroTestsRun)
{
    auto tu = cir::parse(kSiteKernel);
    fuzz::TestSuite suite;
    suite.add({interp::KernelArg::ofInt(3)});
    RunContext ctx;
    ctx.installFaults(singleRule("difftest.cosim", 1.0),
                      RetryPolicy::none());
    repair::DiffTestOptions options;
    repair::DiffTestResult r =
        repair::diffTest(ctx, *tu, "kernel", *tu,
                         hls::HlsConfig::forTop("kernel"), suite,
                         options);
    EXPECT_TRUE(r.tool_failure);
    EXPECT_EQ(r.total, 0);
    EXPECT_EQ(ctx.trace().root().counter("difftest.campaigns"), 0);
    EXPECT_DOUBLE_EQ(r.sim_minutes, 0.0);
}

// --- pipeline-level properties -------------------------------------------

const char *kPipelineSubject =
    "int kernel(int x) { long double v = x; v = v + 1; return v; }";

core::HeteroGenOptions
pipelineOptions(uint64_t seed)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.fuzz.rng_seed = seed;
    opts.fuzz.max_executions = 120;
    opts.fuzz.min_suite_size = 8;
    opts.search.rng_seed = seed;
    opts.search.difftest_sample = 8;
    opts.search.budget_minutes = 1e9; // never the stopping reason
    opts.search.eval_threads = 1;
    return opts;
}

std::string
zeroSpecAllSites()
{
    return "hls.compile:0:transient,hls.synth_check:0:crash,"
           "difftest.cosim:0:timeout";
}

TEST(FaultProperty, ZeroProbabilityPlanIsBitIdenticalToNoPlan)
{
    core::HeteroGen engine(kPipelineSubject);
    for (uint64_t seed = 1; seed <= 50; ++seed) {
        auto base_opts = pipelineOptions(seed);
        auto report = engine.run(base_opts);

        auto faulty_opts = base_opts;
        faulty_opts.faults = FaultPlan::parse(zeroSpecAllSites(), seed);
        auto zero = engine.run(faulty_opts);

        SCOPED_TRACE("seed " + std::to_string(seed));
        // Bit-identical: every report field and the whole trace tree.
        EXPECT_EQ(report.trace_json, zero.trace_json);
        EXPECT_EQ(report.hls_source, zero.hls_source);
        EXPECT_EQ(report.total_minutes, zero.total_minutes);
        EXPECT_EQ(report.search.sim_minutes, zero.search.sim_minutes);
        EXPECT_EQ(report.search.pass_ratio, zero.search.pass_ratio);
        EXPECT_EQ(report.testgen.executions, zero.testgen.executions);
        EXPECT_EQ(report.ok(), zero.ok());
        EXPECT_TRUE(zero.degradations.empty());
        EXPECT_EQ(report.search.iterations, zero.search.iterations);
    }
}

TEST(FaultProperty, OkFaultyRunsReproduceTheFaultFreeArtifact)
{
    core::HeteroGen engine(kPipelineSubject);
    auto clean = engine.run(pipelineOptions(3));
    ASSERT_TRUE(clean.ok());

    int ok_runs = 0;
    int faulted_runs = 0;
    for (uint64_t plan_seed = 1; plan_seed <= 50; ++plan_seed) {
        auto opts = pipelineOptions(3);
        opts.faults = FaultPlan::parse(
            "hls.compile:0.3:transient,difftest.cosim:0.2:transient",
            plan_seed);
        opts.retry.max_attempts = 8;
        opts.retry.backoff_minutes = 0.25;
        RunContext ctx;
        auto faulty = engine.run(ctx, opts);

        SCOPED_TRACE("plan seed " + std::to_string(plan_seed));
        int64_t injected =
            ctx.trace().root().counterTotal("fault.injected");
        int64_t gave_up =
            ctx.trace().root().counterTotal("fault.gave_up");
        faulted_runs += injected > 0;
        if (faulty.ok()) {
            ok_runs += 1;
            // Retries absorbed every fault: identical artifact, same
            // search decisions, strictly more simulated time whenever
            // a fault actually fired.
            EXPECT_EQ(faulty.hls_source, clean.hls_source);
            EXPECT_EQ(faulty.search.iterations,
                      clean.search.iterations);
            EXPECT_EQ(faulty.search.pass_ratio,
                      clean.search.pass_ratio);
            EXPECT_EQ(gave_up, 0);
            if (injected > 0) {
                EXPECT_GT(faulty.total_minutes, clean.total_minutes);
            }
        } else {
            // The only way a retried run fails is giving a site up.
            EXPECT_GT(gave_up, 0);
            EXPECT_FALSE(faulty.degradations.empty());
        }
    }
    // The plan fires in most runs at these rates (the subject makes
    // only a handful of toolchain calls per run); retries must clear
    // nearly every one. Both counts are deterministic in the plan
    // seeds — these are floors, not flaky statistics.
    EXPECT_GT(faulted_runs, 25);
    EXPECT_GE(ok_runs, 45);
}

TEST(FaultProperty, FaultyReportsAreInvariantAcrossEvalThreads)
{
    core::HeteroGen engine(kPipelineSubject);
    core::HeteroGenReport reports[2];
    int thread_counts[2] = {1, 8};
    for (int i = 0; i < 2; ++i) {
        auto opts = pipelineOptions(5);
        opts.search.eval_threads = thread_counts[i];
        opts.faults = FaultPlan::parse(
            "hls.compile:0.3:transient,difftest.cosim:0.2:timeout", 7);
        opts.retry.max_attempts = 4;
        reports[i] = engine.run(opts);
    }
    EXPECT_EQ(reports[0].trace_json, reports[1].trace_json);
    EXPECT_EQ(reports[0].hls_source, reports[1].hls_source);
    EXPECT_EQ(reports[0].total_minutes, reports[1].total_minutes);
    EXPECT_EQ(reports[0].search.sim_minutes,
              reports[1].search.sim_minutes);
    EXPECT_EQ(reports[0].degradations, reports[1].degradations);
}

TEST(FaultDegrade, PermanentCosimFailureDowngradesToStyleCheckFitness)
{
    core::HeteroGen engine(kPipelineSubject);
    auto opts = pipelineOptions(3);
    opts.faults = FaultPlan::parse("difftest.cosim:1:timeout", 1);
    opts.retry.max_attempts = 2;
    RunContext ctx;
    auto report = engine.run(ctx, opts);

    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.degraded());
    EXPECT_TRUE(report.search.cosim_degraded);
    // Style-check + compile fitness still vouches for compatibility,
    // but nobody may claim behaviour preservation.
    EXPECT_TRUE(report.search.hls_compatible);
    EXPECT_FALSE(report.search.behavior_preserved);
    ASSERT_EQ(report.degradations.size(), 1u);
    EXPECT_NE(report.degradations[0].find("difftest.cosim"),
              std::string::npos);
    EXPECT_FALSE(report.hls_source.empty());
    EXPECT_GT(ctx.trace().root().counterTotal("fault.gave_up"), 0);
    // The degraded candidate still passed the real synthesis check.
    auto errors = hls::checkSynthesizability(
        *report.search.program, report.search.config);
    EXPECT_TRUE(errors.empty());
}

TEST(FaultDegrade, PermanentCompileFailureAbortsWithBestSoFar)
{
    core::HeteroGen engine(kPipelineSubject);
    auto opts = pipelineOptions(3);
    opts.faults = FaultPlan::parse("hls.compile:1:crash", 1);
    opts.retry.max_attempts = 2;
    auto report = engine.run(opts);

    EXPECT_FALSE(report.ok());
    ASSERT_FALSE(report.degradations.empty());
    EXPECT_NE(report.degradations[0].find("hls.compile"),
              std::string::npos);
    EXPECT_FALSE(report.search.hls_compatible);
    // Graceful: a printable program still comes back.
    EXPECT_FALSE(report.hls_source.empty());
}

TEST(FaultDegrade, SearchToolFailureCountsMatchTraceCounters)
{
    core::HeteroGen engine(kPipelineSubject);
    auto opts = pipelineOptions(3);
    opts.faults = FaultPlan::parse("difftest.cosim:1:transient", 1);
    opts.retry.max_attempts = 2;
    RunContext ctx;
    auto report = engine.run(ctx, opts);
    EXPECT_EQ(report.search.tool_failures, 1);
    EXPECT_EQ(ctx.trace().root().counterTotal("search.tool_failures"),
              report.search.tool_failures);
    EXPECT_EQ(
        ctx.trace().root().counterTotal("search.degraded_candidates"),
        1);
}

} // namespace
} // namespace heterogen
