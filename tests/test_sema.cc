/** @file Unit tests for semantic analysis and the call graph. */

#include <gtest/gtest.h>

#include "cir/parser.h"
#include "cir/sema.h"
#include "cir/walk.h"

namespace heterogen::cir {
namespace {

TEST(Sema, AssignsUniqueNodeIds)
{
    auto tu = parse("int f(int a) { int b = a + 1; return b * 2; }");
    SemaResult r = analyzeOrDie(*tu);
    EXPECT_GT(r.num_nodes, 5);
    std::set<int> ids;
    bool dup = false;
    forEachStmt(*tu, [&](const Stmt &s) {
        if (!ids.insert(s.node_id).second)
            dup = true;
    });
    forEachExpr(*tu, [&](const Expr &e) {
        if (!ids.insert(e.node_id).second)
            dup = true;
    });
    EXPECT_FALSE(dup) << "node ids must be unique across stmts and exprs";
}

TEST(Sema, CountsBranches)
{
    auto tu = parse(R"(
        int f(int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) { acc += i; }
            }
            while (acc > 10) { acc /= 2; }
            return acc > 0 ? acc : -acc;
        }
    )");
    SemaResult r = analyzeOrDie(*tu);
    // for + if + while + ternary = 4 branch points.
    EXPECT_EQ(r.num_branches, 4);
}

TEST(Sema, LogicalOperatorsAreBranches)
{
    auto tu = parse("int f(int a, int b) { return a > 0 && b > 0; }");
    SemaResult r = analyzeOrDie(*tu);
    EXPECT_EQ(r.num_branches, 1);
}

TEST(Sema, UndeclaredVariable)
{
    auto tu = parse("int f() { return ghost; }");
    SemaResult r = analyze(*tu);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.errors[0].message.find("ghost"), std::string::npos);
}

TEST(Sema, UndefinedFunctionCall)
{
    auto tu = parse("int f() { return missing(1); }");
    SemaResult r = analyze(*tu);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.errors[0].message.find("missing"), std::string::npos);
}

TEST(Sema, IntrinsicsAreKnown)
{
    auto tu = parse(
        "float f(float x) { return sqrt(fabs(x)) + pow(x, 2.0); }");
    EXPECT_TRUE(analyze(*tu).ok());
}

TEST(Sema, GlobalsVisibleInFunctions)
{
    auto tu = parse("int g = 3; int f() { return g; }");
    EXPECT_TRUE(analyze(*tu).ok());
}

TEST(Sema, StructFieldsVisibleInMethods)
{
    auto tu = parse(R"(
        struct S { int x; int getX() { return x; } };
        int f() { return S{ 1 }.getX(); }
    )");
    EXPECT_TRUE(analyze(*tu).ok());
}

TEST(Sema, ScopesNestAndShadow)
{
    auto tu = parse(R"(
        int f(int x) {
            if (x > 0) { int y = 1; x += y; }
            int y = 2;
            return x + y;
        }
    )");
    EXPECT_TRUE(analyze(*tu).ok());
}

TEST(Sema, OutOfScopeUseFails)
{
    auto tu = parse(R"(
        int f(int x) {
            if (x > 0) { int y = 1; }
            return y;
        }
    )");
    EXPECT_FALSE(analyze(*tu).ok());
}

TEST(Sema, DuplicateFunctionReported)
{
    auto tu = parse("int f() { return 1; } int f() { return 2; }");
    SemaResult r = analyze(*tu);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.errors[0].message.find("duplicate"), std::string::npos);
}

TEST(Sema, UnknownStructType)
{
    auto tu = parse("struct A { int x; }; void f() { struct B b; b.x = 1; }");
    EXPECT_FALSE(analyze(*tu).ok());
}

TEST(CallGraph, DirectRecursionEdge)
{
    auto tu = parse(R"(
        struct Node { int val; Node *left; Node *right; };
        void visit(int v) { }
        void traverse(Node *curr) {
            visit(curr->val);
            traverse(curr->left);
            traverse(curr->right);
        }
    )");
    auto graph = callGraph(*tu);
    EXPECT_TRUE(graph["traverse"].count("traverse"));
    EXPECT_TRUE(graph["traverse"].count("visit"));
    EXPECT_FALSE(graph["visit"].count("traverse"));
}

TEST(CallGraph, IntrinsicsExcluded)
{
    auto tu = parse("float f(float x) { return sqrt(x); }");
    auto graph = callGraph(*tu);
    EXPECT_TRUE(graph["f"].empty());
}

TEST(CallGraph, ReachableFunctions)
{
    auto tu = parse(R"(
        void a() { }
        void b() { a(); }
        void c() { b(); }
        void unrelated() { }
    )");
    auto reach = reachableFunctions(*tu, "c");
    EXPECT_TRUE(reach.count("a"));
    EXPECT_TRUE(reach.count("b"));
    EXPECT_TRUE(reach.count("c"));
    EXPECT_FALSE(reach.count("unrelated"));
}

class BranchCountTest
    : public ::testing::TestWithParam<std::pair<const char *, int>>
{};

TEST_P(BranchCountTest, CountsMatch)
{
    auto [src, expected] = GetParam();
    auto tu = parse(src);
    EXPECT_EQ(analyzeOrDie(*tu).num_branches, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, BranchCountTest,
    ::testing::Values(
        std::make_pair("int f() { return 0; }", 0),
        std::make_pair("int f(int x) { if (x) { return 1; } return 0; }",
                       1),
        std::make_pair(
            "int f(int x) { while (x > 0) { x--; } return x; }", 1),
        std::make_pair(
            "int f(int n) { int s = 0; "
            "for (int i = 0; i < n; i++) { if (i % 3 == 0) { s++; } } "
            "return s; }",
            2),
        std::make_pair("int f(int a, int b) { return a && (b || a); }",
                       2)));

} // namespace
} // namespace heterogen::cir
