/** @file Golden-trace regression tests for the repair search.
 *
 * Two fixed subjects run the full pipeline under fully pinned options
 * (every stochastic knob is an explicit constant here — never a library
 * default) and must reproduce the checked-in action sequence, pass
 * ratio and simulated minutes exactly. A failure means search behaviour
 * changed: if the change is intended, update the goldens from the
 * failure message; if not, a refactor silently altered the search.
 */

#include <gtest/gtest.h>

#include "core/heterogen.h"
#include "subjects/subjects.h"
#include "support/strings.h"

namespace heterogen::repair {
namespace {

/** Every knob pinned so defaults may evolve without moving the trace. */
core::HeteroGenOptions
goldenOptions()
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.narrow_bitwidths = true;
    opts.fuzz.rng_seed = 1;
    opts.fuzz.max_executions = 300;
    opts.fuzz.mutations_per_input = 8;
    opts.fuzz.min_suite_size = 12;
    opts.fuzz.max_steps_per_run = 200000;
    opts.fuzz.plateau_minutes = 30.0;
    opts.fuzz.budget_minutes = 240.0;
    opts.fuzz.threads = 1;
    opts.search.rng_seed = 7;
    opts.search.difftest_sample = 10;
    opts.search.budget_minutes = 400.0;
    opts.search.max_iterations = 2000;
    opts.search.use_style_checker = true;
    opts.search.use_dependence = true;
    opts.search.use_memo = true;
    opts.search.difftest_sim_workers = 1;
    opts.search.eval_threads = 1;
    opts.search.proposer = "template";
    return opts;
}

void
expectGoldenWith(const core::HeteroGenOptions &opts,
                 const std::string &src,
                 const std::string &golden_trace,
                 double golden_pass_ratio, double golden_sim_minutes)
{
    core::HeteroGen engine(src);
    auto report = engine.run(opts);
    std::vector<std::string> actions;
    for (const auto &step : report.search.trace)
        actions.push_back(step.action);
    EXPECT_EQ(join(actions, "\n"), trim(golden_trace))
        << "=== actual pass_ratio: " << report.search.pass_ratio
        << " sim_minutes: " << report.search.sim_minutes;
    EXPECT_DOUBLE_EQ(report.search.pass_ratio, golden_pass_ratio);
    EXPECT_NEAR(report.search.sim_minutes, golden_sim_minutes, 1e-6)
        << "=== actual sim_minutes differs";
}

void
expectGolden(const std::string &src, const std::string &golden_trace,
             double golden_pass_ratio, double golden_sim_minutes)
{
    expectGoldenWith(goldenOptions(), src, golden_trace,
                     golden_pass_ratio, golden_sim_minutes);
}

/** Subject 1: the long-double type-repair chain (Figure 7c). */
const char *kTypeChainSubject =
    "int kernel(int x) { long double v = x; v = v + 1; return v; }";

TEST(SearchGolden, TypeChainSubjectReplaysExactly)
{
    expectGolden(kTypeChainSubject,
                 R"(
style-reject: long double variable 'v'
noop:insert($a1:arr,$d1:dyn)
style-reject: long double variable 'v'
noop:insert($a1:arr,$d1:dyn)
style-reject: long double variable 'v'
noop:insert($a1:arr,$d1:dyn)
style-reject: long double variable 'v'
noop:array_static($a1:arr,$i1:int)
style-reject: long double variable 'v'
noop:array_static($a1:arr,$i1:int)
style-reject: long double variable 'v'
noop:array_static($a1:arr,$i1:int)
style-reject: long double variable 'v'
edit:type_trans($v1:var)
compile:errors
edit:type_casting($v1:var)
compile:ok
difftest:10/10
noop:explore_partition($p1:pragma,$a1:arr)
noop:segment($a1:arr)
noop:pipeline($l1:loop)
)",
                 /*pass_ratio=*/1.0,
                 /*sim_minutes=*/4.150046);
}

/** Subject 2: dataflow shared-array divergence forcing a backtrack. */
const char *kBacktrackSubject = R"(
    void bump(int data[16]) {
        for (int i = 0; i < 16; i++) { data[i] = data[i] + 1; }
    }
    int kernel(int seedv) {
        #pragma HLS dataflow
        int data[16];
        for (int i = 0; i < 16; i++) { data[i] = seedv + i; }
        bump(data);
        bump(data);
        int acc = 0;
        for (int i = 0; i < 16; i++) { acc += data[i]; }
        return acc;
    }
)";

TEST(SearchGolden, BacktrackSubjectReplaysExactly)
{
    expectGolden(kBacktrackSubject,
                 R"(
compile:errors
noop:explore_partition($p1:pragma,$a1:arr)
compile:memo-errors
noop:explore_partition($p1:pragma,$a1:arr)
compile:memo-errors
noop:explore_partition($p1:pragma,$a1:arr)
compile:memo-errors
edit:segment($a1:arr)
compile:ok
difftest:0/10
revert:segment($a1:arr)
compile:memo-errors
edit:delete($p1:pragma,$f1:func)
compile:ok
difftest:10/10
edit:pipeline($l1:loop)
edit:unroll($l1:loop)
edit:partition($a1:arr)
edit:dataflow($f1:func)
compile:errors
noop:move($p1:pragma,$f1:func)
compile:memo-errors
noop:move($p1:pragma,$f1:func)
compile:memo-errors
noop:move($p1:pragma,$f1:func)
compile:memo-errors
revert:dataflow($f1:func)
compile:ok
difftest:10/10
)",
                 /*pass_ratio=*/1.0,
                 /*sim_minutes=*/17.311806);
}

/**
 * Subject 3: the streaming stencil (S3) — a skew-joined DATAFLOW region
 * whose fifo is too shallow, so the hang detector fires until the
 * stream-depth template widens it. Pins the stream-repair path end to
 * end: streamify retires as a noop, stream_depth lands the fix, and the
 * performance phase runs on the repaired streaming program.
 */
TEST(SearchGolden, StreamingStencilReplaysExactly)
{
    const subjects::Subject &s = subjects::subjectById("S3");
    core::HeteroGenOptions opts = goldenOptions();
    opts.kernel = s.kernel;
    opts.narrow_bitwidths = false;
    opts.fuzz.host_function = s.host;
    opts.fuzz.rng_seed = s.fuzz_seed;
    opts.fuzz.max_executions = 60;
    opts.fuzz.mutations_per_input = 6;
    opts.fuzz.min_suite_size = 8;
    opts.fuzz.max_steps_per_run = 400000;
    opts.fuzz.plateau_minutes = 30.0;
    opts.fuzz.budget_minutes = 120.0;
    opts.search.difftest_sample = 8;
    expectGoldenWith(opts, s.source,
                     R"(
compile:errors
noop:streamify($a1:arr)
compile:memo-errors
noop:streamify($a1:arr)
compile:memo-errors
noop:streamify($a1:arr)
compile:memo-errors
edit:stream_depth($c1:chan)
compile:ok
difftest:8/8
noop:explore_partition($p1:pragma,$a1:arr)
noop:segment($a1:arr)
edit:pipeline($l1:loop)
edit:unroll($l1:loop)
edit:partition($a1:arr)
noop:dataflow($f1:func)
compile:ok
difftest:8/8
noop:explore_partition($p1:pragma,$a1:arr)
noop:segment($a1:arr)
noop:dataflow($f1:func)
)",
                     /*pass_ratio=*/1.0,
                     /*sim_minutes=*/14.6409616);
}

/**
 * Faulty-run golden: the type-chain subject under a pinned fault plan
 * and retry policy. Retries absorb every injected fault, so the action
 * sequence must stay byte-identical to the fault-free golden above
 * while the simulated minutes grow by the exact fault-latency and
 * backoff charges — pinning both means the retry/backoff charge
 * ordering (and the hash-draw streams behind it) cannot drift
 * unnoticed.
 */
TEST(SearchGolden, FaultyTypeChainReplaysExactly)
{
    core::HeteroGenOptions opts = goldenOptions();
    opts.faults = FaultPlan::parse(
        "hls.compile:0.2:transient,difftest.cosim:0.1:timeout", 1);
    opts.retry.max_attempts = 3;
    opts.retry.backoff_minutes = 1.0;
    opts.retry.backoff_factor = 2.0;

    core::HeteroGen engine(kTypeChainSubject);
    RunContext ctx;
    auto report = engine.run(ctx, opts);

    std::vector<std::string> actions;
    for (const auto &step : report.search.trace)
        actions.push_back(step.action);
    EXPECT_EQ(join(actions, "\n"), trim(R"(
style-reject: long double variable 'v'
noop:insert($a1:arr,$d1:dyn)
style-reject: long double variable 'v'
noop:insert($a1:arr,$d1:dyn)
style-reject: long double variable 'v'
noop:insert($a1:arr,$d1:dyn)
style-reject: long double variable 'v'
noop:array_static($a1:arr,$i1:int)
style-reject: long double variable 'v'
noop:array_static($a1:arr,$i1:int)
style-reject: long double variable 'v'
noop:array_static($a1:arr,$i1:int)
style-reject: long double variable 'v'
edit:type_trans($v1:var)
compile:errors
edit:type_casting($v1:var)
compile:ok
difftest:10/10
noop:explore_partition($p1:pragma,$a1:arr)
noop:segment($a1:arr)
noop:pipeline($l1:loop)
)"));
    EXPECT_TRUE(report.ok());
    EXPECT_DOUBLE_EQ(report.search.pass_ratio, 1.0);

    // Plan seed 1 injects three transient faults (all inside the
    // search span), each cleared by a retry: 3 x 0.5 fault minutes
    // plus 1 + 2 + 1 backoff minutes on top of the fault-free golden
    // (search 4.150046, pipeline 6.5500625).
    const TraceSpan &root = ctx.trace().root();
    EXPECT_EQ(root.counterTotal("fault.injected"), 3)
        << "=== actual injected";
    EXPECT_EQ(root.counterTotal("fault.retries"), 3);
    EXPECT_EQ(root.counterTotal("fault.gave_up"), 0);
    EXPECT_NEAR(report.search.sim_minutes, 9.650046, 1e-6)
        << "=== actual sim_minutes: " << report.search.sim_minutes;
    EXPECT_NEAR(report.total_minutes, 12.0500625, 1e-6)
        << "=== actual total_minutes: " << report.total_minutes;
}

} // namespace
} // namespace heterogen::repair
