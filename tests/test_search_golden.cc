/** @file Golden-trace regression tests for the repair search.
 *
 * Two fixed subjects run the full pipeline under fully pinned options
 * (every stochastic knob is an explicit constant here — never a library
 * default) and must reproduce the checked-in action sequence, pass
 * ratio and simulated minutes exactly. A failure means search behaviour
 * changed: if the change is intended, update the goldens from the
 * failure message; if not, a refactor silently altered the search.
 */

#include <gtest/gtest.h>

#include "core/heterogen.h"
#include "support/strings.h"

namespace heterogen::repair {
namespace {

/** Every knob pinned so defaults may evolve without moving the trace. */
core::HeteroGenOptions
goldenOptions()
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.narrow_bitwidths = true;
    opts.fuzz.rng_seed = 1;
    opts.fuzz.max_executions = 300;
    opts.fuzz.mutations_per_input = 8;
    opts.fuzz.min_suite_size = 12;
    opts.fuzz.max_steps_per_run = 200000;
    opts.fuzz.plateau_minutes = 30.0;
    opts.fuzz.budget_minutes = 240.0;
    opts.fuzz.threads = 1;
    opts.search.rng_seed = 7;
    opts.search.difftest_sample = 10;
    opts.search.budget_minutes = 400.0;
    opts.search.max_iterations = 2000;
    opts.search.use_style_checker = true;
    opts.search.use_dependence = true;
    opts.search.use_memo = true;
    opts.search.difftest_sim_workers = 1;
    opts.search.eval_threads = 1;
    return opts;
}

void
expectGolden(const std::string &src, const std::string &golden_trace,
             double golden_pass_ratio, double golden_sim_minutes)
{
    core::HeteroGen engine(src);
    auto report = engine.run(goldenOptions());
    std::vector<std::string> actions;
    for (const auto &step : report.search.trace)
        actions.push_back(step.action);
    EXPECT_EQ(join(actions, "\n"), trim(golden_trace))
        << "=== actual pass_ratio: " << report.search.pass_ratio
        << " sim_minutes: " << report.search.sim_minutes;
    EXPECT_DOUBLE_EQ(report.search.pass_ratio, golden_pass_ratio);
    EXPECT_NEAR(report.search.sim_minutes, golden_sim_minutes, 1e-6)
        << "=== actual sim_minutes differs";
}

/** Subject 1: the long-double type-repair chain (Figure 7c). */
const char *kTypeChainSubject =
    "int kernel(int x) { long double v = x; v = v + 1; return v; }";

TEST(SearchGolden, TypeChainSubjectReplaysExactly)
{
    expectGolden(kTypeChainSubject,
                 R"(
style-reject: long double variable 'v'
noop:insert($a1:arr,$d1:dyn)
style-reject: long double variable 'v'
noop:insert($a1:arr,$d1:dyn)
style-reject: long double variable 'v'
noop:insert($a1:arr,$d1:dyn)
style-reject: long double variable 'v'
noop:array_static($a1:arr,$i1:int)
style-reject: long double variable 'v'
noop:array_static($a1:arr,$i1:int)
style-reject: long double variable 'v'
noop:array_static($a1:arr,$i1:int)
style-reject: long double variable 'v'
edit:type_trans($v1:var)
compile:errors
edit:type_casting($v1:var)
compile:ok
difftest:10/10
noop:explore_partition($p1:pragma,$a1:arr)
noop:segment($a1:arr)
noop:pipeline($l1:loop)
)",
                 /*pass_ratio=*/1.0,
                 /*sim_minutes=*/4.150046);
}

/** Subject 2: dataflow shared-array divergence forcing a backtrack. */
const char *kBacktrackSubject = R"(
    void bump(int data[16]) {
        for (int i = 0; i < 16; i++) { data[i] = data[i] + 1; }
    }
    int kernel(int seedv) {
        #pragma HLS dataflow
        int data[16];
        for (int i = 0; i < 16; i++) { data[i] = seedv + i; }
        bump(data);
        bump(data);
        int acc = 0;
        for (int i = 0; i < 16; i++) { acc += data[i]; }
        return acc;
    }
)";

TEST(SearchGolden, BacktrackSubjectReplaysExactly)
{
    expectGolden(kBacktrackSubject,
                 R"(
compile:errors
noop:explore_partition($p1:pragma,$a1:arr)
compile:memo-errors
noop:explore_partition($p1:pragma,$a1:arr)
compile:memo-errors
noop:explore_partition($p1:pragma,$a1:arr)
compile:memo-errors
edit:segment($a1:arr)
compile:ok
difftest:0/10
revert:segment($a1:arr)
compile:memo-errors
edit:delete($p1:pragma,$f1:func)
compile:ok
difftest:10/10
edit:pipeline($l1:loop)
edit:unroll($l1:loop)
edit:partition($a1:arr)
edit:dataflow($f1:func)
compile:errors
noop:move($p1:pragma,$f1:func)
compile:memo-errors
noop:move($p1:pragma,$f1:func)
compile:memo-errors
noop:move($p1:pragma,$f1:func)
compile:memo-errors
revert:dataflow($f1:func)
compile:ok
difftest:10/10
)",
                 /*pass_ratio=*/1.0,
                 /*sim_minutes=*/17.311806);
}

} // namespace
} // namespace heterogen::repair
