/** @file Unit tests for the CIR lexer. */

#include <gtest/gtest.h>

#include "cir/lexer.h"
#include "support/diagnostics.h"

namespace heterogen::cir {
namespace {

std::vector<Token>
lex(const std::string &src)
{
    return tokenize(src);
}

TEST(Lexer, EmptyInputYieldsEnd)
{
    auto toks = lex("");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_TRUE(toks[0].is(Tok::End));
}

TEST(Lexer, Identifiers)
{
    auto toks = lex("foo _bar baz42");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_TRUE(toks[0].isIdent("foo"));
    EXPECT_TRUE(toks[1].isIdent("_bar"));
    EXPECT_TRUE(toks[2].isIdent("baz42"));
}

TEST(Lexer, QualifiedIdentifierIsOneToken)
{
    auto toks = lex("hls::stream<int>");
    EXPECT_TRUE(toks[0].isIdent("hls::stream"));
    EXPECT_TRUE(toks[1].isPunct("<"));
    EXPECT_TRUE(toks[2].isIdent("int"));
    EXPECT_TRUE(toks[3].isPunct(">"));
}

TEST(Lexer, IntegerLiterals)
{
    auto toks = lex("0 42 0x1F");
    EXPECT_EQ(toks[0].int_value, 0);
    EXPECT_EQ(toks[1].int_value, 42);
    EXPECT_EQ(toks[2].int_value, 31);
}

TEST(Lexer, FloatLiterals)
{
    auto toks = lex("1.5 2e3 4.25f 3.0L .5");
    EXPECT_TRUE(toks[0].is(Tok::FloatLit));
    EXPECT_DOUBLE_EQ(toks[0].float_value, 1.5);
    EXPECT_DOUBLE_EQ(toks[1].float_value, 2000.0);
    EXPECT_DOUBLE_EQ(toks[2].float_value, 4.25);
    EXPECT_FALSE(toks[2].long_double);
    EXPECT_TRUE(toks[3].long_double);
    EXPECT_DOUBLE_EQ(toks[4].float_value, 0.5);
}

TEST(Lexer, CharLiteralBecomesIntLit)
{
    auto toks = lex("'a' '\\n'");
    EXPECT_TRUE(toks[0].is(Tok::IntLit));
    EXPECT_EQ(toks[0].int_value, 'a');
    EXPECT_EQ(toks[1].int_value, '\n');
}

TEST(Lexer, StringLiteralWithEscapes)
{
    auto toks = lex("\"a\\nb\"");
    ASSERT_TRUE(toks[0].is(Tok::StringLit));
    EXPECT_EQ(toks[0].text, "a\nb");
}

TEST(Lexer, MultiCharOperators)
{
    auto toks = lex("== != <= >= && || -> ++ -- += -= << >>");
    const char *expected[] = {"==", "!=", "<=", ">=", "&&", "||", "->",
                              "++", "--", "+=", "-=", "<<", ">>"};
    for (size_t i = 0; i < std::size(expected); ++i)
        EXPECT_TRUE(toks[i].isPunct(expected[i])) << expected[i];
}

TEST(Lexer, CommentsAreSkipped)
{
    auto toks = lex("a // line comment\nb /* block\ncomment */ c");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_TRUE(toks[0].isIdent("a"));
    EXPECT_TRUE(toks[1].isIdent("b"));
    EXPECT_TRUE(toks[2].isIdent("c"));
}

TEST(Lexer, UnterminatedCommentFails)
{
    EXPECT_THROW(lex("a /* never closed"), FatalError);
}

TEST(Lexer, UnterminatedStringFails)
{
    EXPECT_THROW(lex("\"open"), FatalError);
}

TEST(Lexer, IncludesAreDropped)
{
    auto toks = lex("#include <hls_stream.h>\nint x;");
    EXPECT_TRUE(toks[0].isIdent("int"));
}

TEST(Lexer, HlsPragmaBecomesToken)
{
    auto toks = lex("#pragma HLS unroll factor=4\nint x;");
    ASSERT_TRUE(toks[0].is(Tok::Pragma));
    EXPECT_EQ(toks[0].text, "unroll factor=4");
    EXPECT_TRUE(toks[1].isIdent("int"));
}

TEST(Lexer, NonHlsPragmaIsDropped)
{
    auto toks = lex("#pragma once\nint x;");
    EXPECT_TRUE(toks[0].isIdent("int"));
}

TEST(Lexer, DefineIsRejected)
{
    EXPECT_THROW(lex("#define N 4\n"), FatalError);
}

TEST(Lexer, TracksLineNumbers)
{
    auto toks = lex("a\nb\n  c");
    EXPECT_EQ(toks[0].loc.line, 1);
    EXPECT_EQ(toks[1].loc.line, 2);
    EXPECT_EQ(toks[2].loc.line, 3);
    EXPECT_GT(toks[2].loc.column, 1);
}

} // namespace
} // namespace heterogen::cir
