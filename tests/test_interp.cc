/** @file Unit tests for the CIR interpreter: semantics, traps, coverage. */

#include <gtest/gtest.h>

#include "cir/parser.h"
#include "cir/sema.h"
#include "interp/interp.h"

namespace heterogen::interp {
namespace {

using cir::parse;

/** Parse + analyze + run in one step. */
RunResult
runSrc(const std::string &src, const std::string &fn,
       std::vector<KernelArg> args = {}, RunOptions opts = {})
{
    auto tu = parse(src);
    cir::analyzeOrDie(*tu);
    return runProgram(*tu, fn, args, opts);
}

TEST(Interp, ArithmeticAndReturn)
{
    auto r = runSrc("int f(int a, int b) { return a * b + 1; }", "f",
                    {KernelArg::ofInt(6), KernelArg::ofInt(7)});
    ASSERT_TRUE(r.ok) << r.trap;
    EXPECT_EQ(r.ret.i, 43);
}

TEST(Interp, FloatArithmetic)
{
    auto r = runSrc("float f(float x) { return x * 2.5; }", "f",
                    {KernelArg::ofFloat(4.0)});
    ASSERT_TRUE(r.ok);
    EXPECT_DOUBLE_EQ(r.ret.f, 10.0);
}

TEST(Interp, ControlFlowSum)
{
    auto r = runSrc(R"(
        int f(int n) {
            int acc = 0;
            for (int i = 1; i <= n; i++) {
                if (i % 2 == 0) { acc += i; }
            }
            return acc;
        }
    )",
                    "f", {KernelArg::ofInt(10)});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.ret.i, 30);
}

TEST(Interp, WhileBreakContinue)
{
    auto r = runSrc(R"(
        int f() {
            int i = 0; int acc = 0;
            while (1) {
                i++;
                if (i > 10) { break; }
                if (i % 2 == 1) { continue; }
                acc += i;
            }
            return acc;
        }
    )",
                    "f");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.ret.i, 30);
}

TEST(Interp, ArrayInOut)
{
    auto r = runSrc(R"(
        void scale(int a[4], int k) {
            for (int i = 0; i < 4; i++) { a[i] = a[i] * k; }
        }
    )",
                    "scale",
                    {KernelArg::ofInts({1, 2, 3, 4}), KernelArg::ofInt(3)});
    ASSERT_TRUE(r.ok);
    EXPECT_FALSE(r.has_ret);
    ASSERT_EQ(r.out_args.size(), 2u);
    EXPECT_EQ(r.out_args[0].ints, (std::vector<long>{3, 6, 9, 12}));
}

TEST(Interp, GlobalsPersistAcrossCalls)
{
    auto r = runSrc(R"(
        int counter = 0;
        void bump() { counter += 1; }
        int f() {
            bump(); bump(); bump();
            return counter;
        }
    )",
                    "f");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.ret.i, 3);
}

TEST(Interp, RecursionFactorial)
{
    auto r = runSrc(R"(
        int fact(int n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
    )",
                    "fact", {KernelArg::ofInt(6)});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.ret.i, 720);
}

TEST(Interp, RunawayRecursionTraps)
{
    auto r = runSrc("int f(int n) { return f(n + 1); }", "f",
                    {KernelArg::ofInt(0)});
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.trap.find("depth"), std::string::npos);
}

TEST(Interp, StepLimitTraps)
{
    RunOptions opts;
    opts.max_steps = 1000;
    auto r = runSrc("int f() { while (1) { } return 0; }", "f", {}, opts);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.trap.find("step limit"), std::string::npos);
}

TEST(Interp, DivisionByZeroTraps)
{
    auto r = runSrc("int f(int a) { return 10 / a; }", "f",
                    {KernelArg::ofInt(0)});
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.trap.find("division by zero"), std::string::npos);
}

TEST(Interp, OutOfBoundsTraps)
{
    auto r = runSrc("int f() { int a[4]; return a[9]; }", "f");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.trap.find("out-of-bounds"), std::string::npos);
}

TEST(Interp, MallocFreeRoundTrip)
{
    auto r = runSrc(R"(
        int f() {
            int *p = (int*)malloc(4 * sizeof(int));
            p[0] = 7; p[3] = 9;
            int v = p[0] + p[3];
            free(p);
            return v;
        }
    )",
                    "f");
    ASSERT_TRUE(r.ok) << r.trap;
    EXPECT_EQ(r.ret.i, 16);
}

TEST(Interp, UseAfterFreeTraps)
{
    auto r = runSrc(R"(
        int f() {
            int *p = (int*)malloc(sizeof(int));
            free(p);
            return p[0];
        }
    )",
                    "f");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.trap.find("use after free"), std::string::npos);
}

TEST(Interp, DoubleFreeTraps)
{
    auto r = runSrc(R"(
        int f() {
            int *p = (int*)malloc(sizeof(int));
            free(p);
            free(p);
            return 0;
        }
    )",
                    "f");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.trap.find("double free"), std::string::npos);
}

TEST(Interp, NullDereferenceTraps)
{
    auto r = runSrc("int f() { int *p = 0; return *p; }", "f");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.trap.find("null pointer"), std::string::npos);
}

TEST(Interp, LinkedListViaMalloc)
{
    auto r = runSrc(R"(
        struct Node { int val; Node *next; };
        int f(int n) {
            Node *head = 0;
            for (int i = 0; i < n; i++) {
                Node *fresh = (Node*)malloc(sizeof(Node));
                fresh->val = i;
                fresh->next = head;
                head = fresh;
            }
            int acc = 0;
            Node *curr = head;
            while (curr != 0) { acc += curr->val; curr = curr->next; }
            return acc;
        }
    )",
                    "f", {KernelArg::ofInt(5)});
    ASSERT_TRUE(r.ok) << r.trap;
    EXPECT_EQ(r.ret.i, 10);
}

TEST(Interp, BinaryTreeRecursion)
{
    auto r = runSrc(R"(
        struct Node { int val; Node *left; Node *right; };
        Node *build(int depth, int v) {
            if (depth == 0) { return (Node*)0; }
            Node *n = (Node*)malloc(sizeof(Node));
            n->val = v;
            n->left = build(depth - 1, v * 2);
            n->right = build(depth - 1, v * 2 + 1);
            return n;
        }
        int sum(Node *n) {
            if (n == 0) { return 0; }
            return n->val + sum(n->left) + sum(n->right);
        }
        int f(int depth) { return sum(build(depth, 1)); }
    )",
                    "f", {KernelArg::ofInt(3)});
    ASSERT_TRUE(r.ok) << r.trap;
    EXPECT_EQ(r.ret.i, 1 + 2 + 3 + 4 + 5 + 6 + 7);
}

TEST(Interp, ArrayOfStructs)
{
    auto r = runSrc(R"(
        struct P { int x; int y; };
        int f() {
            P pts[3];
            for (int i = 0; i < 3; i++) { pts[i].x = i; pts[i].y = i * i; }
            int acc = 0;
            for (int i = 0; i < 3; i++) { acc += pts[i].x + pts[i].y; }
            return acc;
        }
    )",
                    "f");
    ASSERT_TRUE(r.ok) << r.trap;
    EXPECT_EQ(r.ret.i, 0 + 0 + 1 + 1 + 2 + 4);
}

TEST(Interp, StructLiteralWithCtorAndMethod)
{
    auto r = runSrc(R"(
        struct Acc {
            int total;
            Acc(int seed) : total(seed) {}
            int addTwice(int v) { total = total + v * 2; return total; }
        };
        int f() { return Acc{ 10 }.addTwice(5); }
    )",
                    "f");
    ASSERT_TRUE(r.ok) << r.trap;
    EXPECT_EQ(r.ret.i, 20);
}

TEST(Interp, StreamsReadWrite)
{
    auto r = runSrc(R"(
        void f(hls::stream<int> &in, hls::stream<int> &out) {
            while (!in.empty()) { out.write(in.read() * 2); }
        }
    )",
                    "f",
                    {KernelArg::ofInts({1, 2, 3}), KernelArg::ofInts({})});
    ASSERT_TRUE(r.ok) << r.trap;
    ASSERT_EQ(r.out_args.size(), 2u);
    EXPECT_EQ(r.out_args[1].ints, (std::vector<long>{2, 4, 6}));
}

TEST(Interp, ReadEmptyStreamTraps)
{
    auto r = runSrc("int f(hls::stream<int> &in) { return in.read(); }",
                    "f", {KernelArg::ofInts({})});
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.trap.find("empty stream"), std::string::npos);
}

TEST(Interp, OversizedMallocTraps)
{
    // A fuzzed size argument must trap at the heap limit instead of
    // exhausting host memory; both engines must agree on the trap.
    RunOptions opts;
    opts.engine = EngineKind::Differential;
    auto r = runSrc(R"(
        int f(int n) {
            int *p = (int*)malloc(sizeof(int) * n);
            p[0] = n;
            int v = p[0];
            free(p);
            return v;
        }
    )",
                    "f", {KernelArg::ofInt(2000000000)}, opts);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.trap.find("allocation exceeds interpreter heap limit"),
              std::string::npos);
}

TEST(Interp, OversizedStructMallocTraps)
{
    RunOptions opts;
    opts.engine = EngineKind::Differential;
    auto r = runSrc(R"(
        struct Pair { int a; int b; };
        int f(int n) {
            struct Pair *p =
                (struct Pair*)malloc(sizeof(struct Pair) * n);
            p[0].a = n;
            int v = p[0].a;
            free(p);
            return v;
        }
    )",
                    "f", {KernelArg::ofInt(2000000000)}, opts);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.trap.find("allocation exceeds interpreter heap limit"),
              std::string::npos);
}

TEST(Interp, VlaAllocation)
{
    auto r = runSrc(R"(
        int f(int n) {
            int buf[n];
            for (int i = 0; i < n; i++) { buf[i] = i; }
            int acc = 0;
            for (int i = 0; i < n; i++) { acc += buf[i]; }
            return acc;
        }
    )",
                    "f", {KernelArg::ofInt(6)});
    ASSERT_TRUE(r.ok) << r.trap;
    EXPECT_EQ(r.ret.i, 15);
}

TEST(Interp, FpgaUintWrapsOnStore)
{
    auto r = runSrc(R"(
        int f() {
            fpga_uint<7> x = 130;
            return x;
        }
    )",
                    "f");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.ret.i, 2); // 130 mod 128
}

TEST(Interp, FpgaIntSignWraps)
{
    auto r = runSrc("int f() { fpga_int<4> x = 9; return x; }", "f");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.ret.i, -7); // 9 wraps in 4-bit two's complement
}

TEST(Interp, FpgaFloatQuantizes)
{
    auto r1 = runSrc("float f(float x) { fpga_float<8,4> v = x; return v; }",
                     "f", {KernelArg::ofFloat(1.0 + 1.0 / 1024.0)});
    ASSERT_TRUE(r1.ok);
    EXPECT_DOUBLE_EQ(r1.ret.f, 1.0) << "tiny mantissa bits drop low bits";
    auto r2 = runSrc(
        "float f(float x) { fpga_float<8,23> v = x; return v; }", "f",
        {KernelArg::ofFloat(1.5)});
    ASSERT_TRUE(r2.ok);
    EXPECT_DOUBLE_EQ(r2.ret.f, 1.5);
}

TEST(Interp, MathIntrinsics)
{
    auto r = runSrc(
        "double f(double x) { return sqrt(x) + pow(2.0, 3.0) + fabs(-1.0); }",
        "f", {KernelArg::ofFloat(9.0)});
    ASSERT_TRUE(r.ok);
    EXPECT_DOUBLE_EQ(r.ret.f, 3.0 + 8.0 + 1.0);
}

TEST(Interp, SqrtNegativeTraps)
{
    auto r = runSrc("double f(double x) { return sqrt(x); }", "f",
                    {KernelArg::ofFloat(-1.0)});
    EXPECT_FALSE(r.ok);
}

TEST(Interp, PointerArithmeticOverArray)
{
    auto r = runSrc(R"(
        int f(int a[5]) {
            int *p = a;
            int acc = 0;
            for (int i = 0; i < 5; i++) { acc += *p; p = p + 1; }
            return acc;
        }
    )",
                    "f", {KernelArg::ofInts({1, 2, 3, 4, 5})});
    ASSERT_TRUE(r.ok) << r.trap;
    EXPECT_EQ(r.ret.i, 15);
}

TEST(Interp, CoverageRecordsBothEdges)
{
    auto tu = parse(R"(
        int f(int x) {
            if (x > 0) { return 1; }
            return 0;
        }
    )");
    auto sema = cir::analyzeOrDie(*tu);
    CoverageMap cov(sema.num_branches);
    RunOptions opts;
    opts.coverage = &cov;
    runProgram(*tu, "f", {KernelArg::ofInt(5)}, opts);
    EXPECT_EQ(cov.hitCount(), 1u);
    EXPECT_DOUBLE_EQ(cov.coverage(), 0.5);
    runProgram(*tu, "f", {KernelArg::ofInt(-5)}, opts);
    EXPECT_EQ(cov.hitCount(), 2u);
    EXPECT_DOUBLE_EQ(cov.coverage(), 1.0);
}

TEST(Interp, ProfileTracksMaxValues)
{
    auto tu = parse(R"(
        int f(int n) {
            int ret = 0;
            for (int i = 0; i < n; i++) { ret = ret + i; }
            return ret;
        }
    )");
    cir::analyzeOrDie(*tu);
    ValueProfile profile;
    RunOptions opts;
    opts.profile = &profile;
    runProgram(*tu, "f", {KernelArg::ofInt(10)}, opts);
    const ValueRange *r = profile.find("f::ret");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->max_int, 45);
    EXPECT_GE(r->requiredUnsignedBits(), 6);
}

TEST(Interp, SeedCaptureAtKernelBoundary)
{
    auto tu = parse(R"(
        int kernel(int a[4], int k) {
            int acc = 0;
            for (int i = 0; i < 4; i++) { acc += a[i] * k; }
            return acc;
        }
        int host() {
            int data[4];
            for (int i = 0; i < 4; i++) { data[i] = i + 1; }
            return kernel(data, 10);
        }
    )");
    cir::analyzeOrDie(*tu);
    std::vector<KernelArg> captured;
    RunOptions opts;
    opts.capture_function = "kernel";
    opts.captured_args = &captured;
    auto r = runProgram(*tu, "host", {}, opts);
    ASSERT_TRUE(r.ok) << r.trap;
    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0].ints, (std::vector<long>{1, 2, 3, 4}));
    EXPECT_EQ(captured[1].i, 10);
}

TEST(Interp, CyclesAccumulateAndScaleWithWork)
{
    auto small = runSrc(
        "int f() { int acc = 0; "
        "for (int i = 0; i < 10; i++) { acc += i; } return acc; }",
        "f");
    auto large = runSrc(
        "int f() { int acc = 0; "
        "for (int i = 0; i < 1000; i++) { acc += i; } return acc; }",
        "f");
    ASSERT_TRUE(small.ok);
    ASSERT_TRUE(large.ok);
    EXPECT_GT(small.cycles, 0u);
    EXPECT_GT(large.cycles, small.cycles * 20);
    EXPECT_GT(large.cpuMillis(), 0.0);
}

TEST(Interp, SameBehaviorComparesOutputs)
{
    auto a = runSrc("int f(int x) { return x + 1; }", "f",
                    {KernelArg::ofInt(1)});
    auto b = runSrc("int f(int x) { return x + 1; }", "f",
                    {KernelArg::ofInt(1)});
    auto c = runSrc("int f(int x) { return x + 2; }", "f",
                    {KernelArg::ofInt(1)});
    EXPECT_TRUE(a.sameBehavior(b));
    EXPECT_FALSE(a.sameBehavior(c));
}

TEST(Interp, TernaryAndLogicalOps)
{
    auto r = runSrc(
        "int f(int a, int b) { return (a > 0 && b > 0) ? a + b : -1; }",
        "f", {KernelArg::ofInt(2), KernelArg::ofInt(3)});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.ret.i, 5);
    auto r2 = runSrc(
        "int f(int a, int b) { return (a > 0 && b > 0) ? a + b : -1; }",
        "f", {KernelArg::ofInt(-2), KernelArg::ofInt(3)});
    EXPECT_EQ(r2.ret.i, -1);
}

TEST(Interp, ShortCircuitSkipsRhs)
{
    // RHS would trap (div by zero) if evaluated.
    auto r = runSrc("int f(int a) { return a == 0 || 10 / a > 1; }", "f",
                    {KernelArg::ofInt(0)});
    ASSERT_TRUE(r.ok) << r.trap;
    EXPECT_EQ(r.ret.i, 1);
}

TEST(Interp, MultiDimensionalArrays)
{
    auto r = runSrc(R"(
        int f() {
            int m[3][4];
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 4; j++) { m[i][j] = i * 10 + j; }
            }
            return m[2][3];
        }
    )",
                    "f");
    ASSERT_TRUE(r.ok) << r.trap;
    EXPECT_EQ(r.ret.i, 23);
}

TEST(Interp, StaticStreamSharedAcrossCalls)
{
    auto r = runSrc(R"(
        void push(int v) {
            static hls::stream<int> q;
            q.write(v);
        }
        int f() { push(1); push(2); return 0; }
    )",
                    "f");
    EXPECT_TRUE(r.ok) << r.trap;
}

class WrapWidthTest : public ::testing::TestWithParam<int>
{};

TEST_P(WrapWidthTest, UnsignedWrapMatchesModulo)
{
    int width = GetParam();
    std::string src = "int f(int x) { fpga_uint<" + std::to_string(width) +
                      "> v = x; return v; }";
    long input = 1000003;
    auto r = runSrc(src, "f", {KernelArg::ofInt(input)});
    ASSERT_TRUE(r.ok);
    long mod = 1L << width;
    EXPECT_EQ(r.ret.i, ((input % mod) + mod) % mod);
}

INSTANTIATE_TEST_SUITE_P(Widths, WrapWidthTest,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 12, 16, 21));

} // namespace
} // namespace heterogen::interp
