/** @file Unit tests for the CIR parser. */

#include <gtest/gtest.h>

#include "cir/parser.h"
#include "cir/printer.h"
#include "support/diagnostics.h"

namespace heterogen::cir {
namespace {

TEST(Parser, SimpleFunction)
{
    auto tu = parse("int add(int a, int b) { return a + b; }");
    ASSERT_EQ(tu->functions.size(), 1u);
    const FunctionDecl *fn = tu->findFunction("add");
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn->ret_type->kind(), TypeKind::Int);
    ASSERT_EQ(fn->params.size(), 2u);
    EXPECT_EQ(fn->params[0].name, "a");
    ASSERT_EQ(fn->body->stmts.size(), 1u);
    EXPECT_EQ(fn->body->stmts[0]->kind(), StmtKind::Return);
}

TEST(Parser, GlobalVariables)
{
    auto tu = parse("int counter = 0; static float table[16];");
    ASSERT_EQ(tu->globals.size(), 2u);
    auto *g0 = tu->findGlobal("counter");
    ASSERT_NE(g0, nullptr);
    EXPECT_NE(g0->init, nullptr);
    auto *g1 = tu->findGlobal("table");
    ASSERT_NE(g1, nullptr);
    EXPECT_TRUE(g1->is_static);
    ASSERT_TRUE(g1->type->isArray());
    EXPECT_EQ(g1->type->arraySize(), 16);
    EXPECT_EQ(g1->type->element()->kind(), TypeKind::Float);
}

TEST(Parser, PointerAndLongDoubleTypes)
{
    auto tu = parse("long double f(int *p, long n) { return 0.0L; }");
    const auto &params = tu->functions[0]->params;
    EXPECT_EQ(tu->functions[0]->ret_type->kind(), TypeKind::LongDouble);
    EXPECT_TRUE(params[0].type->isPointer());
    EXPECT_EQ(params[0].type->element()->kind(), TypeKind::Int);
    EXPECT_EQ(params[1].type->kind(), TypeKind::Long);
}

TEST(Parser, FpgaTypes)
{
    auto tu = parse("fpga_uint<7> f(fpga_int<12> a, fpga_float<8,23> b) "
                    "{ return a; }");
    EXPECT_EQ(tu->functions[0]->ret_type->kind(), TypeKind::FpgaUint);
    EXPECT_EQ(tu->functions[0]->ret_type->width(), 7);
    EXPECT_EQ(tu->functions[0]->params[0].type->width(), 12);
    EXPECT_EQ(tu->functions[0]->params[1].type->exponentBits(), 8);
    EXPECT_EQ(tu->functions[0]->params[1].type->mantissaBits(), 23);
}

TEST(Parser, UnsignedMapsToFpgaUint32)
{
    auto tu = parse("unsigned f(unsigned int x) { return x; }");
    EXPECT_EQ(tu->functions[0]->ret_type->kind(), TypeKind::FpgaUint);
    EXPECT_EQ(tu->functions[0]->ret_type->width(), 32);
}

TEST(Parser, StreamTypeAndReferenceParam)
{
    auto tu = parse("void f(hls::stream<int> &in) { in.write(1); }");
    const Param &p = tu->functions[0]->params[0];
    EXPECT_TRUE(p.is_reference);
    ASSERT_TRUE(p.type->isStream());
    EXPECT_EQ(p.type->element()->kind(), TypeKind::Int);
    ASSERT_EQ(tu->functions[0]->body->stmts.size(), 1u);
    auto *es = static_cast<ExprStmt *>(tu->functions[0]->body->stmts[0]
                                           .get());
    EXPECT_EQ(es->expr->kind(), ExprKind::MethodCall);
}

TEST(Parser, StructWithFieldsCtorAndMethod)
{
    auto tu = parse(R"(
        struct If2 {
            hls::stream<int> &in;
            hls::stream<int> &out;
            If2(hls::stream<int> &i, hls::stream<int> &o) : in(i), out(o) {}
            int doRead() { return in.read(); }
        };
        void top(hls::stream<int> &in, hls::stream<int> &out) {
            If2{ in, out }.doRead();
        }
    )");
    const StructDecl *sd = tu->findStruct("If2");
    ASSERT_NE(sd, nullptr);
    ASSERT_EQ(sd->fields.size(), 2u);
    EXPECT_TRUE(sd->fields[0].is_reference);
    ASSERT_NE(sd->ctor, nullptr);
    ASSERT_EQ(sd->ctor->inits.size(), 2u);
    EXPECT_EQ(sd->ctor->inits[0].first, "in");
    EXPECT_EQ(sd->ctor->inits[0].second, "i");
    ASSERT_EQ(sd->methods.size(), 1u);
    EXPECT_EQ(sd->methods[0]->name, "doRead");
}

TEST(Parser, StructLiteralMethodCall)
{
    auto tu = parse(R"(
        struct P { int x; };
        int f() { return P{ 3 }.x; }
    )");
    auto *ret = static_cast<ReturnStmt *>(tu->functions[0]->body->stmts[0]
                                              .get());
    ASSERT_EQ(ret->value->kind(), ExprKind::Member);
}

TEST(Parser, MallocAndSizeof)
{
    auto tu = parse(R"(
        struct Node { int val; };
        void init(Node **root) { *root = (Node*)malloc(sizeof(Node)); }
    )");
    const FunctionDecl *fn = tu->findFunction("init");
    ASSERT_NE(fn, nullptr);
    auto *es = static_cast<ExprStmt *>(fn->body->stmts[0].get());
    ASSERT_EQ(es->expr->kind(), ExprKind::Assign);
    const auto &assign = static_cast<const Assign &>(*es->expr);
    EXPECT_EQ(assign.lhs->kind(), ExprKind::Unary);
    EXPECT_EQ(assign.rhs->kind(), ExprKind::Cast);
}

TEST(Parser, VlaDeclarationCapturesSizeExpr)
{
    auto tu = parse("void f(int cols) { int buf[cols]; buf[0] = 1; }");
    auto *decl = static_cast<DeclStmt *>(tu->functions[0]->body->stmts[0]
                                             .get());
    ASSERT_TRUE(decl->type->isArray());
    EXPECT_EQ(decl->type->arraySize(), kUnknownArraySize);
    ASSERT_NE(decl->vla_size, nullptr);
    EXPECT_EQ(decl->vla_size->kind(), ExprKind::Ident);
}

TEST(Parser, MultiDimensionalArray)
{
    auto tu = parse("int g[3][4]; void f() { g[1][2] = 5; }");
    auto *decl = tu->findGlobal("g");
    ASSERT_TRUE(decl->type->isArray());
    EXPECT_EQ(decl->type->arraySize(), 3);
    ASSERT_TRUE(decl->type->element()->isArray());
    EXPECT_EQ(decl->type->element()->arraySize(), 4);
}

TEST(Parser, ControlFlowStatements)
{
    auto tu = parse(R"(
        int f(int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) acc += i;
                else acc -= 1;
                while (acc > 100) { acc /= 2; break; }
            }
            return acc;
        }
    )");
    const auto &stmts = tu->functions[0]->body->stmts;
    ASSERT_EQ(stmts.size(), 3u);
    EXPECT_EQ(stmts[1]->kind(), StmtKind::For);
    const auto &loop = static_cast<const ForStmt &>(*stmts[1]);
    ASSERT_EQ(loop.body->stmts.size(), 2u);
    EXPECT_EQ(loop.body->stmts[0]->kind(), StmtKind::If);
    EXPECT_EQ(loop.body->stmts[1]->kind(), StmtKind::While);
}

TEST(Parser, ElseIfChain)
{
    auto tu = parse(R"(
        int sign(int x) {
            if (x > 0) return 1;
            else if (x < 0) return -1;
            else return 0;
        }
    )");
    const auto &s = static_cast<const IfStmt &>(
        *tu->functions[0]->body->stmts[0]);
    ASSERT_NE(s.else_block, nullptr);
    ASSERT_EQ(s.else_block->stmts.size(), 1u);
    EXPECT_EQ(s.else_block->stmts[0]->kind(), StmtKind::If);
}

TEST(Parser, PragmasInsideFunctions)
{
    auto tu = parse(R"(
        void f(int a[16]) {
            #pragma HLS dataflow
            for (int i = 0; i < 16; i++) {
                #pragma HLS unroll factor=4
                a[i] = a[i] * 2;
            }
        }
    )");
    const auto &stmts = tu->functions[0]->body->stmts;
    ASSERT_EQ(stmts[0]->kind(), StmtKind::Pragma);
    const auto &p = static_cast<const PragmaStmt &>(*stmts[0]);
    EXPECT_EQ(p.info.kind, PragmaKind::Dataflow);
    const auto &loop = static_cast<const ForStmt &>(*stmts[1]);
    const auto &p2 = static_cast<const PragmaStmt &>(*loop.body->stmts[0]);
    EXPECT_EQ(p2.info.kind, PragmaKind::Unroll);
    EXPECT_EQ(p2.info.paramInt("factor", -1), 4);
}

TEST(Parser, OperatorPrecedence)
{
    ExprPtr e = parseExpression("1 + 2 * 3");
    ASSERT_EQ(e->kind(), ExprKind::Binary);
    const auto &add = static_cast<const Binary &>(*e);
    EXPECT_EQ(add.op, BinaryOp::Add);
    EXPECT_EQ(add.rhs->kind(), ExprKind::Binary);
    EXPECT_EQ(static_cast<const Binary &>(*add.rhs).op, BinaryOp::Mul);
}

TEST(Parser, ComparisonBindsLooserThanShift)
{
    ExprPtr e = parseExpression("a << 1 < b");
    const auto &cmp = static_cast<const Binary &>(*e);
    EXPECT_EQ(cmp.op, BinaryOp::Lt);
    EXPECT_EQ(static_cast<const Binary &>(*cmp.lhs).op, BinaryOp::Shl);
}

TEST(Parser, TernaryAndAssignment)
{
    ExprPtr e = parseExpression("x = a > b ? a : b");
    ASSERT_EQ(e->kind(), ExprKind::Assign);
    const auto &assign = static_cast<const Assign &>(*e);
    EXPECT_EQ(assign.rhs->kind(), ExprKind::Ternary);
}

TEST(Parser, CastVersusParenExpr)
{
    ExprPtr cast = parseExpression("(float)x");
    EXPECT_EQ(cast->kind(), ExprKind::Cast);
    ExprPtr grouped = parseExpression("(x)");
    EXPECT_EQ(grouped->kind(), ExprKind::Ident);
    ExprPtr fpga_cast = parseExpression("(fpga_float<8,23>)x");
    ASSERT_EQ(fpga_cast->kind(), ExprKind::Cast);
    EXPECT_EQ(static_cast<const Cast &>(*fpga_cast).type->kind(),
              TypeKind::FpgaFloat);
}

TEST(Parser, PostfixChains)
{
    ExprPtr e = parseExpression("arr[i].next->val++");
    EXPECT_EQ(e->kind(), ExprKind::Unary);
    EXPECT_EQ(static_cast<const Unary &>(*e).op, UnaryOp::PostInc);
}

TEST(Parser, SyntaxErrorsThrow)
{
    EXPECT_THROW(parse("int f( { }"), FatalError);
    EXPECT_THROW(parse("int f() { return 1 }"), FatalError);
    EXPECT_THROW(parse("blah f() {}"), FatalError);
    EXPECT_THROW(parseExpression("1 +"), FatalError);
    EXPECT_THROW(parseExpression("a b"), FatalError);
}

TEST(Parser, UnknownPragmaRejected)
{
    EXPECT_THROW(parse("void f() { #pragma HLS frobnicate\n }"),
                 FatalError);
}

} // namespace
} // namespace heterogen::cir
