/** @file RunContext spine tests: span tree semantics, JSON round-trip,
 * budget/cancellation behaviour, option validation, the pluggable log
 * sink, and — the contract the refactor rests on — counters that agree
 * exactly with the per-stage result statistics and span minutes that
 * sum to the report's total.
 */

#include <gtest/gtest.h>

#include "cir/parser.h"
#include "cir/sema.h"
#include "core/heterogen.h"
#include "fuzz/fuzzer.h"
#include "support/diagnostics.h"
#include "support/run_context.h"
#include "support/trace.h"

namespace heterogen {
namespace {

// --- Trace / TraceSpan ---------------------------------------------------

TEST(Trace, ChargesPropagateToEveryOpenSpan)
{
    Trace t;
    t.charge(1.0);
    TraceSpan &a = t.beginSpan("a");
    t.charge(2.0);
    TraceSpan &b = t.beginSpan("b");
    t.charge(4.0);
    t.endSpan();
    t.charge(8.0);
    t.endSpan();
    t.charge(16.0);

    EXPECT_DOUBLE_EQ(b.minutes, 4.0);
    EXPECT_DOUBLE_EQ(a.minutes, 2.0 + 4.0 + 8.0);
    EXPECT_DOUBLE_EQ(t.root().minutes, 31.0);
    EXPECT_DOUBLE_EQ(t.now(), 31.0);
    // start_minutes records the root clock at open time.
    EXPECT_DOUBLE_EQ(a.start_minutes, 1.0);
    EXPECT_DOUBLE_EQ(b.start_minutes, 3.0);
}

TEST(Trace, SpanMinutesAreLocalAccumulators)
{
    // Each span sums only its own charges, starting from zero — the
    // property that keeps stage minutes bit-identical to the old
    // per-module accumulators regardless of what ran before.
    Trace t;
    t.charge(0.1); // pollutes only the root
    t.beginSpan("stage");
    double expected = 0;
    for (int i = 0; i < 100; ++i) {
        double c = 0.008 + double(i) / 2.0e8;
        t.charge(c);
        expected += c;
    }
    EXPECT_EQ(t.current().minutes, expected); // exact, not NEAR
    t.endSpan();
}

TEST(Trace, CountersAttachToCurrentSpan)
{
    Trace t;
    t.count("root.events");
    t.beginSpan("child");
    t.count("evals", 3);
    t.count("evals", 2);
    const TraceSpan &child = t.current();
    t.endSpan();

    EXPECT_EQ(child.counter("evals"), 5);
    EXPECT_EQ(child.counter("absent"), 0);
    EXPECT_EQ(t.root().counter("root.events"), 1);
    EXPECT_EQ(t.root().counter("evals"), 0);
    EXPECT_EQ(t.root().counterTotal("evals"), 5);
    EXPECT_EQ(t.counterTotal("evals"), 5);
}

TEST(Trace, ChildAndFindHelpers)
{
    Trace t;
    t.beginSpan("pipeline");
    t.beginSpan("fuzz");
    t.endSpan();
    t.beginSpan("repair");
    t.endSpan();
    t.endSpan();

    const TraceSpan &root = t.root();
    ASSERT_NE(root.child("pipeline"), nullptr);
    EXPECT_EQ(root.child("fuzz"), nullptr); // not a *direct* child
    ASSERT_NE(root.find("fuzz"), nullptr);
    ASSERT_NE(root.find("repair"), nullptr);
    EXPECT_EQ(root.find("nope"), nullptr);
    EXPECT_EQ(root.child("pipeline")->children.size(), 2u);
    EXPECT_EQ(root.find("fuzz")->parent, root.child("pipeline"));
}

TEST(Trace, ChildMinutesSumsDirectChildren)
{
    Trace t;
    t.beginSpan("a");
    t.charge(1.5);
    t.endSpan();
    t.beginSpan("b");
    t.charge(2.25);
    t.endSpan();
    EXPECT_DOUBLE_EQ(t.root().childMinutes(), 3.75);
}

// --- JSON round-trip -----------------------------------------------------

TEST(TraceJson, RoundTripsExactly)
{
    Trace t;
    t.charge(1.0 / 3.0); // not representable in short decimal
    t.count("outer", 42);
    t.beginSpan("stage one");
    t.charge(0.1 + 0.2); // classic float-noise value
    t.count("hls.errors.dynamic_data_structures", 7);
    t.beginSpan("inner");
    t.charge(1e-9);
    t.endSpan();
    t.endSpan();

    std::string json = t.json();
    auto parsed = parseTraceJson(json);
    ASSERT_NE(parsed, nullptr);
    // %.17g printing makes the round-trip bit-exact.
    EXPECT_EQ(parsed->json(), json);
    EXPECT_EQ(parsed->name, "run");
    EXPECT_EQ(parsed->minutes, t.root().minutes);
    EXPECT_EQ(parsed->counter("outer"), 42);
    ASSERT_NE(parsed->find("inner"), nullptr);
    EXPECT_EQ(parsed->find("inner")->minutes, 1e-9);
    EXPECT_EQ(parsed->find("stage one")
                  ->counter("hls.errors.dynamic_data_structures"),
              7);
    // Parent links are rebuilt by the parser.
    EXPECT_EQ(parsed->find("inner")->parent, parsed->find("stage one"));
}

TEST(TraceJson, EscapesSpecialCharactersInNames)
{
    Trace t;
    t.beginSpan("quote\" slash\\ tab\t");
    t.endSpan();
    std::string json = t.json();
    auto parsed = parseTraceJson(json);
    ASSERT_EQ(parsed->children.size(), 1u);
    EXPECT_EQ(parsed->children[0]->name, "quote\" slash\\ tab\t");
    EXPECT_EQ(parsed->json(), json);
}

TEST(TraceJson, RejectsMalformedInput)
{
    EXPECT_THROW(parseTraceJson(""), FatalError);
    EXPECT_THROW(parseTraceJson("{"), FatalError);
    EXPECT_THROW(parseTraceJson("[]"), FatalError);
    EXPECT_THROW(parseTraceJson("{\"name\":}"), FatalError);
    EXPECT_THROW(parseTraceJson("{\"name\":\"x\"} trailing"),
                 FatalError);
    EXPECT_THROW(parseTraceJson("{\"name\":\"x\",\"counters\":3}"),
                 FatalError);
}

// --- Budget --------------------------------------------------------------

TEST(Budget, UnlimitedIsNeverExceeded)
{
    Budget b = Budget::unlimited();
    EXPECT_TRUE(b.isUnlimited());
    EXPECT_FALSE(b.exceededBy(0));
    EXPECT_FALSE(b.exceededBy(1e12));
}

TEST(Budget, ExceededAtExactlyTheLimit)
{
    // `elapsed >= limit` mirrors the historical `while (sim < budget)`
    // loop conditions: the iteration that lands exactly on the budget
    // is the last one.
    Budget b = Budget::minutes(5.0);
    EXPECT_FALSE(b.isUnlimited());
    EXPECT_FALSE(b.exceededBy(4.999999));
    EXPECT_TRUE(b.exceededBy(5.0));
    EXPECT_TRUE(b.exceededBy(6.0));
}

// --- RunContext ----------------------------------------------------------

TEST(RunContext, ClockAndStageMinutes)
{
    RunContext ctx;
    ctx.charge(1.0);
    EXPECT_DOUBLE_EQ(ctx.now(), 1.0);
    {
        SpanScope outer(ctx, "outer");
        ctx.charge(2.0);
        {
            SpanScope inner(ctx, "inner");
            ctx.charge(4.0);
            EXPECT_DOUBLE_EQ(ctx.stageMinutes(), 4.0);
            EXPECT_DOUBLE_EQ(inner.minutes(), 4.0);
        }
        EXPECT_DOUBLE_EQ(ctx.stageMinutes(), 6.0);
        EXPECT_DOUBLE_EQ(outer.minutes(), 6.0);
    }
    EXPECT_DOUBLE_EQ(ctx.now(), 7.0);
    EXPECT_DOUBLE_EQ(ctx.stageMinutes(), 7.0); // root is current again
}

TEST(RunContext, DeadlineChecksEveryOpenBudget)
{
    RunContext ctx;
    SpanScope outer(ctx, "outer", Budget::minutes(3.0));
    {
        // The inner span's own budget is generous, but the enclosing
        // one is not: the hierarchical check must trip.
        SpanScope inner(ctx, "inner", Budget::minutes(100.0));
        EXPECT_FALSE(ctx.deadlineExceeded());
        ctx.charge(2.0);
        EXPECT_FALSE(ctx.deadlineExceeded());
        ctx.charge(1.0);
        EXPECT_TRUE(ctx.deadlineExceeded());
        EXPECT_TRUE(ctx.shouldStop());
    }
}

TEST(RunContext, InnerBudgetDoesNotOutliveItsSpan)
{
    RunContext ctx;
    {
        SpanScope tight(ctx, "tight", Budget::minutes(0.5));
        ctx.charge(1.0);
        EXPECT_TRUE(ctx.deadlineExceeded());
    }
    // The exhausted budget left with its span.
    EXPECT_FALSE(ctx.deadlineExceeded());
}

TEST(RunContext, CancellationFlagIsSticky)
{
    RunContext ctx;
    EXPECT_FALSE(ctx.shouldStop());
    ctx.requestCancel();
    EXPECT_TRUE(ctx.cancelled());
    EXPECT_TRUE(ctx.shouldStop());
}

// --- stage behaviour under the spine ------------------------------------

const char *kKernel = R"(
    int kernel(int a[8], int n) {
        int acc = 0;
        for (int i = 0; i < 8; i++) {
            if (a[i] > 64) { acc += a[i] * 2; }
            else if (a[i] < -10) { acc -= a[i]; }
            else { acc += i; }
        }
        int j = 0;
        while (j < n % 7) { acc += j * j; j++; }
        return acc;
    }
)";

fuzz::FuzzOptions
smallFuzzOptions(uint64_t seed)
{
    fuzz::FuzzOptions options;
    options.rng_seed = seed;
    options.max_executions = 150;
    options.mutations_per_input = 8;
    options.min_suite_size = 16;
    options.max_steps_per_run = 100000;
    return options;
}

TEST(SpineFuzz, CountersMatchFuzzResultExactly)
{
    auto tu = cir::parse(kKernel);
    cir::SemaResult sema = cir::analyzeOrDie(*tu);
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        RunContext ctx;
        fuzz::FuzzResult r = fuzz::fuzzKernel(ctx, *tu, "kernel", sema,
                                              smallFuzzOptions(seed));
        const TraceSpan *span = ctx.trace().root().find("fuzz");
        ASSERT_NE(span, nullptr) << "seed " << seed;
        EXPECT_EQ(span->counter("fuzz.executions"), r.executions);
        EXPECT_EQ(span->counter("fuzz.coverage_edges"),
                  r.coverage.hitCount());
        EXPECT_EQ(span->counter("fuzz.suite_size"),
                  int64_t(r.suite.size()));
        // The span's minutes ARE the result's simulated minutes.
        EXPECT_EQ(span->minutes, r.sim_minutes);
        EXPECT_GT(span->counter("interp.runs"), 0);
        EXPECT_GT(span->counter("interp.steps"), 0);
    }
}

TEST(SpineFuzz, ContextOverloadMatchesLegacyOverloadByteForByte)
{
    auto tu = cir::parse(kKernel);
    cir::SemaResult sema = cir::analyzeOrDie(*tu);
    fuzz::FuzzOptions options = smallFuzzOptions(7);
    fuzz::FuzzResult legacy =
        fuzz::fuzzKernel(*tu, "kernel", sema, options);
    RunContext ctx;
    fuzz::FuzzResult spine =
        fuzz::fuzzKernel(ctx, *tu, "kernel", sema, options);

    EXPECT_EQ(legacy.executions, spine.executions);
    EXPECT_EQ(legacy.sim_minutes, spine.sim_minutes);
    EXPECT_EQ(legacy.last_progress_minutes,
              spine.last_progress_minutes);
    ASSERT_EQ(legacy.suite.size(), spine.suite.size());
    for (size_t i = 0; i < legacy.suite.size(); ++i)
        EXPECT_EQ(legacy.suite[i].args, spine.suite[i].args);
}

TEST(SpineFuzz, ExecCountersNameTheEngineThatRan)
{
    auto tu = cir::parse(kKernel);
    cir::SemaResult sema = cir::analyzeOrDie(*tu);

    // Tree walker: every run lands on interp.execs.tree_walk and the
    // bytecode compiler never fires.
    RunContext walk_ctx;
    fuzz::FuzzOptions options = smallFuzzOptions(3);
    options.engine = interp::EngineKind::TreeWalk;
    fuzz::fuzzKernel(walk_ctx, *tu, "kernel", sema, options);
    const TraceSpan *walk_span = walk_ctx.trace().root().find("fuzz");
    ASSERT_NE(walk_span, nullptr);
    EXPECT_EQ(walk_span->counter("interp.execs.tree_walk"),
              walk_span->counter("interp.runs"));
    EXPECT_EQ(walk_span->counter("interp.execs.bytecode"), 0);
    EXPECT_EQ(walk_span->counter("interp.bytecode.compiles"), 0);

    // Bytecode: same campaign, every run lands on interp.execs.bytecode
    // and the campaign-shared interpreter compiled exactly once.
    RunContext vm_ctx;
    options.engine = interp::EngineKind::Bytecode;
    fuzz::fuzzKernel(vm_ctx, *tu, "kernel", sema, options);
    const TraceSpan *vm_span = vm_ctx.trace().root().find("fuzz");
    ASSERT_NE(vm_span, nullptr);
    EXPECT_EQ(vm_span->counter("interp.execs.bytecode"),
              vm_span->counter("interp.runs"));
    EXPECT_EQ(vm_span->counter("interp.execs.tree_walk"), 0);
    EXPECT_EQ(vm_span->counter("interp.bytecode.compiles"), 1);

    // The engines are bit-identical, so every other number agrees.
    EXPECT_EQ(walk_span->counter("interp.runs"),
              vm_span->counter("interp.runs"));
    EXPECT_EQ(walk_span->counter("interp.steps"),
              vm_span->counter("interp.steps"));
    EXPECT_EQ(walk_span->counter("fuzz.executions"),
              vm_span->counter("fuzz.executions"));
    EXPECT_EQ(walk_span->minutes, vm_span->minutes);
}

TEST(SpineFuzz, CancellationStopsTheCampaignAfterTheSeed)
{
    auto tu = cir::parse(kKernel);
    cir::SemaResult sema = cir::analyzeOrDie(*tu);
    RunContext ctx;
    ctx.requestCancel();
    fuzz::FuzzResult r = fuzz::fuzzKernel(ctx, *tu, "kernel", sema,
                                          smallFuzzOptions(1));
    // The seed input always executes; cancellation stops the loop.
    EXPECT_EQ(r.executions, 1);
    EXPECT_EQ(ctx.trace().root().find("fuzz")->counter(
                  "fuzz.executions"),
              1);
}

// --- whole-pipeline accounting ------------------------------------------

core::HeteroGenOptions
pipelineOptions()
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.fuzz.max_executions = 100;
    opts.fuzz.rng_seed = 5;
    return opts;
}

TEST(SpinePipeline, SpanMinutesSumToTotalAndCountersMatchReport)
{
    core::HeteroGen engine(
        "int kernel(int x) { long double v = x; return v; }");
    RunContext ctx;
    auto report = engine.run(ctx, pipelineOptions());
    ASSERT_TRUE(report.ok());

    const TraceSpan &root = ctx.trace().root();
    const TraceSpan *pipeline = root.child("pipeline");
    ASSERT_NE(pipeline, nullptr);
    const TraceSpan *fz = pipeline->child("fuzz");
    const TraceSpan *repair = pipeline->child("repair");
    ASSERT_NE(fz, nullptr);
    ASSERT_NE(repair, nullptr);
    ASSERT_NE(pipeline->child("profile"), nullptr);
    ASSERT_NE(pipeline->child("init_hls"), nullptr);

    // Per-stage spans account for the whole run.
    EXPECT_EQ(report.total_minutes, pipeline->minutes);
    EXPECT_NEAR(pipeline->childMinutes(), report.total_minutes, 1e-9);
    EXPECT_EQ(fz->minutes, report.testgen.sim_minutes);
    EXPECT_EQ(repair->minutes, report.search.sim_minutes);

    // Counters agree exactly with the stage statistics.
    EXPECT_EQ(fz->counter("fuzz.executions"), report.testgen.executions);
    EXPECT_EQ(fz->counter("fuzz.coverage_edges"),
              report.testgen.coverage.hitCount());
    EXPECT_EQ(repair->counter("search.candidates"),
              report.search.iterations);
    EXPECT_EQ(repair->counter("search.style_checks"),
              report.search.style_checks);
    EXPECT_EQ(repair->counter("search.style_rejections"),
              report.search.style_rejections);
    EXPECT_EQ(repair->counter("repair.memo.compile_hits"),
              report.search.memo.compile_hits);
    EXPECT_EQ(repair->counter("repair.memo.compile_misses"),
              report.search.memo.compile_misses);
    EXPECT_EQ(repair->counter("repair.memo.difftest_hits"),
              report.search.memo.difftest_hits);
    EXPECT_EQ(repair->counter("repair.memo.difftest_misses"),
              report.search.memo.difftest_misses);
    EXPECT_EQ(repair->counterTotal("hls.compiles"),
              report.search.full_hls_invocations);
}

TEST(SpinePipeline, ReportTraceJsonRoundTripsAndMatchesContext)
{
    core::HeteroGen engine(
        "int kernel(int x) { long double v = x; return v; }");
    RunContext ctx;
    auto report = engine.run(ctx, pipelineOptions());
    ASSERT_FALSE(report.trace_json.empty());
    EXPECT_EQ(report.trace_json, ctx.traceJson());
    auto parsed = parseTraceJson(report.trace_json);
    EXPECT_EQ(parsed->json(), report.trace_json);
    const TraceSpan *pipeline = parsed->child("pipeline");
    ASSERT_NE(pipeline, nullptr);
    EXPECT_EQ(pipeline->minutes, report.total_minutes);
}

TEST(SpinePipeline, TraceIsDeterministicAcrossRepeatedRuns)
{
    core::HeteroGen engine(
        "int kernel(int x) { long double v = x; return v; }");
    auto a = engine.run(pipelineOptions());
    auto b = engine.run(pipelineOptions());
    EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(SpinePipeline, PipelineBudgetCapsEveryStage)
{
    core::HeteroGen engine(
        "int kernel(int x) { long double v = x; return v; }");
    auto unconstrained = engine.run(pipelineOptions());

    auto opts = pipelineOptions();
    // Smaller than one fuzz execution charge: the hierarchical budget
    // must stop fuzzing after the seed and leave the search nothing.
    opts.pipeline_budget_minutes = 1e-6;
    auto capped = engine.run(opts);
    EXPECT_EQ(capped.testgen.executions, 1);
    EXPECT_LT(capped.total_minutes, unconstrained.total_minutes);
    EXPECT_EQ(capped.search.iterations, 0);
}

TEST(SpinePipeline, CancelledContextProducesAnEmptyRun)
{
    core::HeteroGen engine(
        "int kernel(int x) { long double v = x; return v; }");
    RunContext ctx;
    ctx.requestCancel();
    auto report = engine.run(ctx, pipelineOptions());
    EXPECT_EQ(report.testgen.executions, 1); // the seed input only
    EXPECT_EQ(report.search.iterations, 0);
}

// --- option validation ---------------------------------------------------

TEST(ValidateOptions, RejectsEmptyKernel)
{
    core::HeteroGenOptions opts;
    EXPECT_THROW(core::validateOptions(opts), FatalError);
}

TEST(ValidateOptions, RejectsNegativePipelineBudget)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.pipeline_budget_minutes = -1;
    EXPECT_THROW(core::validateOptions(opts), FatalError);
}

TEST(ValidateOptions, RejectsNegativeFuzzBudget)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.fuzz.budget_minutes = -0.5;
    EXPECT_THROW(core::validateOptions(opts), FatalError);
}

TEST(ValidateOptions, RejectsNegativePlateau)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.fuzz.plateau_minutes = -1;
    EXPECT_THROW(core::validateOptions(opts), FatalError);
}

TEST(ValidateOptions, RejectsNegativeSearchBudget)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.search.budget_minutes = -180;
    EXPECT_THROW(core::validateOptions(opts), FatalError);
}

TEST(ValidateOptions, RejectsNonPositiveSimWorkers)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.search.difftest_sim_workers = 0;
    EXPECT_THROW(core::validateOptions(opts), FatalError);
    opts.search.difftest_sim_workers = -2;
    EXPECT_THROW(core::validateOptions(opts), FatalError);
}

TEST(ValidateOptions, RejectsZeroMaxAttempts)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.retry.max_attempts = 0; // could never attempt anything
    EXPECT_THROW(core::validateOptions(opts), FatalError);
}

TEST(ValidateOptions, RejectsNegativeMaxAttempts)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.retry.max_attempts = -3;
    EXPECT_THROW(core::validateOptions(opts), FatalError);
}

TEST(ValidateOptions, RejectsNegativeBackoffMinutes)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.retry.backoff_minutes = -1.0; // would wait negative time
    EXPECT_THROW(core::validateOptions(opts), FatalError);
}

TEST(ValidateOptions, RejectsNegativeBackoffFactor)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.retry.backoff_factor = -0.5;
    EXPECT_THROW(core::validateOptions(opts), FatalError);
}

TEST(ValidateOptions, RejectsOutOfRangeFaultProbability)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.faults.rules.push_back(
        FaultRule{"hls.compile", 1.5, FaultKind::Transient, -1});
    EXPECT_THROW(core::validateOptions(opts), FatalError);
    opts.faults.rules[0].probability = -0.1;
    EXPECT_THROW(core::validateOptions(opts), FatalError);
}

TEST(ValidateOptions, RejectsUnknownEngineName)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.engine = "qemu";
    try {
        core::validateOptions(opts);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        // The diagnostic must name the bad value and the legal ones.
        EXPECT_NE(std::string(e.what()).find("qemu"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("tree_walk"),
                  std::string::npos);
    }
    opts.engine = "bytecodes"; // near-miss spelling still rejected
    EXPECT_THROW(core::validateOptions(opts), FatalError);
}

TEST(ValidateOptions, AcceptsEveryKnownEngineName)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    for (const char *name :
         {"", "tree_walk", "bytecode", "differential"}) {
        opts.engine = name;
        EXPECT_NO_THROW(core::validateOptions(opts)) << name;
    }
}

TEST(ValidateOptions, RejectsUnknownProposerName)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.proposer = "gpt4";
    try {
        core::validateOptions(opts);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        // The diagnostic must name the bad value and the legal ones.
        EXPECT_NE(std::string(e.what()).find("gpt4"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("template"),
                  std::string::npos);
    }
    opts.proposer = "corpuses"; // near-miss spelling still rejected
    EXPECT_THROW(core::validateOptions(opts), FatalError);
    // The nested search knob is validated too, not just the override.
    opts.proposer.clear();
    opts.search.proposer = "gpt4";
    EXPECT_THROW(core::validateOptions(opts), FatalError);
}

TEST(ValidateOptions, AcceptsEveryKnownProposerName)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    for (const char *name : {"", "template", "corpus", "mixed"}) {
        opts.proposer = name;
        opts.search.proposer = name;
        EXPECT_NO_THROW(core::validateOptions(opts)) << name;
    }
}

TEST(ValidateOptions, AcceptsTheDefaultsWithAKernel)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    EXPECT_NO_THROW(core::validateOptions(opts));
    // The no-retry policy is a legal (if spartan) configuration.
    opts.retry = RetryPolicy::none();
    opts.faults = FaultPlan::parse("hls.compile:0.1:transient");
    EXPECT_NO_THROW(core::validateOptions(opts));
}

TEST(ValidateOptions, RunRejectsBadOptionsBeforeAnyStage)
{
    core::HeteroGen engine("int kernel(int x) { return x; }");
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.search.difftest_sim_workers = 0;
    EXPECT_THROW(engine.run(opts), FatalError);
}

// --- logging: levels and the pluggable sink ------------------------------

TEST(LogLevelKnob, ParsesTheHeterogenLogValues)
{
    EXPECT_EQ(parseLogLevel("debug"), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("info"), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("warn"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("error"), LogLevel::Error);
    // Case-insensitive and whitespace-tolerant, like HETEROGEN_JOBS.
    EXPECT_EQ(parseLogLevel("INFO"), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("  Debug "), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("verbose"), std::nullopt);
    EXPECT_EQ(parseLogLevel(""), std::nullopt);
}

TEST(LogLevelKnob, FormatLogLineIsTheHistoricalShape)
{
    EXPECT_EQ(formatLogLine(LogLevel::Warn, "x"), "[warn] x");
    EXPECT_EQ(formatLogLine(LogLevel::Info, "a b"), "[info] a b");
}

TEST(LogSinkApi, MemorySinkCapturesFilteredRecords)
{
    LogLevel saved = logLevel();
    MemoryLogSink sink;
    LogSink *prev = setLogSink(&sink);
    setLogLevel(LogLevel::Info);
    inform("hello ", 42);
    warn("beware");
    setLogLevel(LogLevel::Error);
    warn("filtered out");
    setLogSink(prev);
    setLogLevel(saved);

    ASSERT_EQ(sink.lines().size(), 2u);
    EXPECT_EQ(sink.lines()[0], "[info] hello 42");
    EXPECT_EQ(sink.lines()[1], "[warn] beware");
    sink.clear();
    EXPECT_TRUE(sink.lines().empty());
}

TEST(LogSinkApi, RunContextAttachAndDetachRestoreThePreviousSink)
{
    MemoryLogSink outer_sink;
    LogSink *prev = setLogSink(&outer_sink);
    {
        RunContext ctx;
        MemoryLogSink run_sink;
        ctx.attachLogSink(&run_sink);
        EXPECT_EQ(logSink(), &run_sink);
        warn("captured by the run");
        ASSERT_EQ(run_sink.lines().size(), 1u);
        EXPECT_EQ(run_sink.lines()[0], "[warn] captured by the run");
        EXPECT_TRUE(outer_sink.lines().empty());
        ctx.detachLogSink();
        EXPECT_EQ(logSink(), &outer_sink);
    }
    EXPECT_EQ(logSink(), &outer_sink);
    setLogSink(prev);
}

TEST(LogSinkApi, RunContextDestructorDetachesAnAttachedSink)
{
    LogSink *prev = setLogSink(nullptr);
    {
        RunContext ctx;
        MemoryLogSink run_sink;
        ctx.attachLogSink(&run_sink);
        EXPECT_EQ(logSink(), &run_sink);
    }
    EXPECT_EQ(logSink(), nullptr);
    setLogSink(prev);
}

} // namespace
} // namespace heterogen
