/** @file Round-trip and formatting tests for the CIR printer. */

#include <gtest/gtest.h>

#include "cir/parser.h"
#include "cir/printer.h"
#include "subjects/forum_corpus.h"
#include "subjects/subjects.h"

namespace heterogen::cir {
namespace {

/** print(parse(x)) must reach a fixed point after one round. */
void
expectStablePrint(const std::string &src)
{
    auto tu1 = parse(src);
    std::string once = print(*tu1);
    auto tu2 = parse(once);
    std::string twice = print(*tu2);
    EXPECT_EQ(once, twice) << "printer not a fixed point for:\n" << src;
}

TEST(Printer, ExpressionForms)
{
    EXPECT_EQ(print(*parseExpression("1 + 2 * 3")), "1 + (2 * 3)");
    EXPECT_EQ(print(*parseExpression("a[i]")), "a[i]");
    EXPECT_EQ(print(*parseExpression("p->next")), "p->next");
    EXPECT_EQ(print(*parseExpression("s.f(1, 2)")), "s.f(1, 2)");
    EXPECT_EQ(print(*parseExpression("(float)x")), "(float)x");
    EXPECT_EQ(print(*parseExpression("-x")), "-x");
    EXPECT_EQ(print(*parseExpression("x++")), "x++");
    EXPECT_EQ(print(*parseExpression("sizeof(int)")), "sizeof(int)");
}

TEST(Printer, FloatLiteralAlwaysHasPointOrExponent)
{
    EXPECT_EQ(print(*parseExpression("1.0")), "1.0");
    EXPECT_EQ(print(*parseExpression("2.5")), "2.5");
    EXPECT_EQ(print(*parseExpression("3.0L")), "3.0L");
}

TEST(Printer, RoundTripFunction)
{
    expectStablePrint("int add(int a, int b) { return a + b; }");
}

TEST(Printer, RoundTripControlFlow)
{
    expectStablePrint(R"(
        int f(int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) { acc += i; } else { acc -= 1; }
                while (acc > 100) { acc /= 2; }
            }
            return acc;
        }
    )");
}

TEST(Printer, RoundTripStructsAndStreams)
{
    expectStablePrint(R"(
        struct If2 {
            hls::stream<int> &in;
            hls::stream<int> &out;
            If2(hls::stream<int> &i, hls::stream<int> &o) : in(i), out(o) {}
            int doRead() { return in.read(); }
        };
        void top(hls::stream<int> &in, hls::stream<int> &out) {
            #pragma HLS dataflow
            out.write(If2{ in, out }.doRead());
        }
    )");
}

TEST(Printer, RoundTripPointersMallocAndRecursion)
{
    expectStablePrint(R"(
        struct Node { int val; Node *left; Node *right; };
        void init(Node **root) { *root = (Node*)malloc(sizeof(Node)); }
        void traverse(Node *curr) {
            if (curr != 0) {
                traverse(curr->left);
                traverse(curr->right);
            }
        }
    )");
}

TEST(Printer, RoundTripPragmasAndArrays)
{
    expectStablePrint(R"(
        int table[13];
        void f(int a[16], int n) {
            #pragma HLS array_partition variable=a factor=4
            for (int i = 0; i < 16; i++) {
                #pragma HLS pipeline II=1
                #pragma HLS unroll factor=2
                a[i] = table[i % 13] + n;
            }
        }
    )");
}

TEST(Printer, RoundTripVla)
{
    expectStablePrint("void f(int cols) { int buf[cols]; buf[0] = 1; }");
}

TEST(Printer, RoundTripFpgaTypes)
{
    expectStablePrint(R"(
        fpga_uint<7> clamp(fpga_int<12> a) {
            fpga_float<8,23> scale = 2.0;
            return (fpga_uint<7>)(a * 2);
        }
    )");
}

TEST(Printer, PragmaStringForms)
{
    PragmaInfo p;
    p.kind = PragmaKind::ArrayPartition;
    p.params["variable"] = "A";
    p.params["factor"] = "4";
    EXPECT_EQ(p.str(), "#pragma HLS array_partition factor=4 variable=A");
    PragmaInfo d;
    d.kind = PragmaKind::Dataflow;
    EXPECT_EQ(d.str(), "#pragma HLS dataflow");
}

// --- corpus-wide fixpoint properties -------------------------------------
//
// The hand-written snippets above pin individual constructs; these
// sweeps pin the property over every program the repository actually
// ships — all ten evaluation subjects (original and manual HLS ports),
// the four streaming subjects, and every repro snippet in the
// generated forum corpus.

TEST(PrinterFixpoint, EverySubjectSourceIsAPrintFixpoint)
{
    for (const subjects::Subject &s : subjects::allSubjects()) {
        SCOPED_TRACE(s.id + " (" + s.name + ")");
        expectStablePrint(s.source);
    }
}

TEST(PrinterFixpoint, EverySubjectManualPortIsAPrintFixpoint)
{
    for (const subjects::Subject &s : subjects::allSubjects()) {
        if (s.manual_source.empty())
            continue;
        SCOPED_TRACE(s.id + " manual port");
        expectStablePrint(s.manual_source);
    }
}

TEST(PrinterFixpoint, EveryStreamingSubjectIsAPrintFixpoint)
{
    for (const subjects::Subject &s : subjects::streamingSubjects()) {
        SCOPED_TRACE(s.id + " (" + s.name + ")");
        expectStablePrint(s.source);
        ASSERT_FALSE(s.manual_source.empty());
        expectStablePrint(s.manual_source);
    }
}

TEST(PrinterFixpoint, EveryForumCorpusSnippetIsAPrintFixpoint)
{
    // The paper-sized corpus: 1000 posts, every category represented,
    // symbols spliced into every snippet template.
    auto posts = subjects::generateForumCorpus(1000, 2022);
    ASSERT_EQ(posts.size(), 1000u);
    for (const subjects::ForumPost &post : posts) {
        SCOPED_TRACE("post " + std::to_string(post.post_id) + ": " +
                     post.title);
        ASSERT_FALSE(post.snippet.empty());
        expectStablePrint(post.snippet);
    }
}

TEST(Printer, ClonePrintsIdentically)
{
    auto tu = parse(R"(
        struct Node { int val; Node *next; };
        int sum(Node *head) {
            int acc = 0;
            while (head != 0) { acc += head->val; head = head->next; }
            return acc;
        }
    )");
    auto copy = tu->clone();
    EXPECT_EQ(print(*tu), print(*copy));
}

} // namespace
} // namespace heterogen::cir
