/** @file The service's determinism contract: the same submission set
 * produces bit-identical per-job reports, schedules and traces at any
 * host thread count, and per-job reports that are invariant even under
 * different slot counts. Also the multi-worker stress test the tsan CI
 * job runs to hunt data races in the shared-pool plumbing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "service/service.h"

namespace heterogen::service {
namespace {

const char *kScaleSource = R"(
int scale(int x, int y) {
    long double acc = 0.299L * x + 0.587L * y;
    long double bias = acc * 0.125L + 1.0L;
    return bias;
}
)";

const char *kSumSource = R"(
int sum(int a[16], int n) {
    if (n < 0) { n = 0; }
    if (n > 16) { n = 16; }
    long double acc = 0.0L;
    for (int i = 0; i < n; i++) {
        acc = acc + a[i] * 0.5L + 1.0L;
    }
    return acc;
}
)";

core::HeteroGenOptions
fastOptions(const std::string &kernel, uint64_t seed)
{
    core::HeteroGenOptions opts;
    opts.kernel = kernel;
    opts.fuzz.rng_seed = seed;
    opts.fuzz.max_executions = 80;
    opts.fuzz.mutations_per_input = 4;
    opts.fuzz.min_suite_size = 8;
    opts.fuzz.budget_minutes = 30;
    opts.fuzz.plateau_minutes = 10;
    opts.fuzz.max_steps_per_run = 100000;
    opts.search.budget_minutes = 60;
    opts.search.max_iterations = 40;
    opts.search.difftest_sample = 4;
    opts.search.rng_seed = seed * 31 + 7;
    opts.engine = "bytecode";
    return opts;
}

/** A mixed schedule: two tenants (one quota'd), three priorities,
 * staggered arrivals, one scheduled mid-run cancel. */
std::vector<JobSpec>
mixedSchedule()
{
    std::vector<JobSpec> specs;
    for (int i = 0; i < 10; ++i) {
        JobSpec spec;
        spec.tenant = (i % 2 == 0) ? "alpha" : "beta";
        spec.priority = static_cast<Priority>(i % 3);
        spec.arrival_minutes = 0.4 * i;
        bool loopy = i % 3 == 0;
        spec.source = loopy ? kSumSource : kScaleSource;
        spec.options =
            fastOptions(loopy ? "sum" : "scale", 1 + i);
        if (i == 4)
            spec.cancel_at_minutes = spec.arrival_minutes + 1.5;
        specs.push_back(spec);
    }
    return specs;
}

ServiceOptions
schedulerOptions(int slots, int host_threads)
{
    ServiceOptions o;
    o.slots = slots;
    o.host_threads = host_threads;
    o.eval_threads = 2;
    o.tenants.push_back({"alpha", 1e9, 1.0});
    o.tenants.push_back({"beta", 25.0, 2.0});
    return o;
}

struct RunRecord
{
    std::vector<JobStatus> statuses;
    std::vector<std::string> traces;
    std::vector<std::string> sources;
    std::vector<double> total_minutes;
    SchedulerStats stats;
};

RunRecord
replay(const ServiceOptions &options)
{
    ConversionService svc(options);
    std::vector<int> ids;
    for (const JobSpec &spec : mixedSchedule())
        ids.push_back(svc.submit(spec));
    svc.drain();
    RunRecord rec;
    for (int id : ids) {
        const JobOutcome &out = svc.collect(id);
        rec.statuses.push_back(out.status);
        rec.traces.push_back(out.trace_json);
        rec.sources.push_back(out.has_report ? out.report.hls_source
                                             : "");
        rec.total_minutes.push_back(
            out.has_report ? out.report.total_minutes : -1);
    }
    rec.stats = svc.stats();
    return rec;
}

void
expectIdentical(const RunRecord &a, const RunRecord &b,
                const std::string &what)
{
    ASSERT_EQ(a.statuses.size(), b.statuses.size());
    for (size_t i = 0; i < a.statuses.size(); ++i) {
        SCOPED_TRACE(what + ", job " + std::to_string(i));
        const JobStatus &sa = a.statuses[i], &sb = b.statuses[i];
        EXPECT_EQ(sa.state, sb.state);
        EXPECT_EQ(sa.stop_reason, sb.stop_reason);
        EXPECT_EQ(sa.stage, sb.stage);
        EXPECT_EQ(sa.start_minutes, sb.start_minutes);
        EXPECT_EQ(sa.finish_minutes, sb.finish_minutes);
        EXPECT_EQ(sa.preemptions, sb.preemptions);
        EXPECT_EQ(a.traces[i], b.traces[i]) << "trace drift";
        EXPECT_EQ(a.sources[i], b.sources[i]);
        EXPECT_EQ(a.total_minutes[i], b.total_minutes[i]);
    }
    EXPECT_EQ(a.stats.sim_minutes, b.stats.sim_minutes);
    EXPECT_EQ(a.stats.preemptions, b.stats.preemptions);
    EXPECT_EQ(a.stats.max_in_flight, b.stats.max_in_flight);
    ASSERT_EQ(a.stats.tenants.size(), b.stats.tenants.size());
    for (size_t i = 0; i < a.stats.tenants.size(); ++i) {
        EXPECT_EQ(a.stats.tenants[i].consumed_minutes,
                  b.stats.tenants[i].consumed_minutes);
    }
}

TEST(ServiceDeterminism, HostThreadCountNeverChangesTheSchedule)
{
    RunRecord one = replay(schedulerOptions(2, 1));
    RunRecord two = replay(schedulerOptions(2, 2));
    RunRecord eight = replay(schedulerOptions(2, 8));
    expectIdentical(one, two, "host_threads 1 vs 2");
    expectIdentical(one, eight, "host_threads 1 vs 8");
    // The schedule did real scheduling: queueing and the scheduled
    // cancel both happened.
    EXPECT_EQ(one.stats.max_in_flight, 2);
    int cancelled = 0;
    for (const JobStatus &s : one.statuses)
        cancelled += s.state == JobState::Cancelled;
    EXPECT_GE(cancelled, 1);
}

TEST(ServiceDeterminism, ReportsAreSlotCountInvariant)
{
    // Slot counts legitimately change *when* jobs run; with no quotas,
    // cancels or preemption pressure they must not change what any job
    // *produces* — each report and trace is a function of the job spec
    // alone.
    auto run = [](int slots) {
        ServiceOptions o;
        o.slots = slots;
        o.eval_threads = 2;
        ConversionService svc(o);
        std::vector<int> ids;
        for (int i = 0; i < 6; ++i) {
            JobSpec spec;
            spec.tenant = "acme";
            spec.arrival_minutes = 0;
            bool loopy = i % 2 == 0;
            spec.source = loopy ? kSumSource : kScaleSource;
            spec.options =
                fastOptions(loopy ? "sum" : "scale", 1 + i);
            ids.push_back(svc.submit(spec));
        }
        svc.drain();
        std::vector<std::string> traces;
        for (int id : ids)
            traces.push_back(svc.collect(id).trace_json);
        return traces;
    };
    std::vector<std::string> one = run(1);
    std::vector<std::string> two = run(2);
    std::vector<std::string> eight = run(8);
    for (size_t i = 0; i < one.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        EXPECT_FALSE(one[i].empty());
        EXPECT_EQ(one[i], two[i]);
        EXPECT_EQ(one[i], eight[i]);
    }
}

TEST(ServiceDeterminism, RepeatedReplayIsBitIdentical)
{
    RunRecord a = replay(schedulerOptions(3, 4));
    RunRecord b = replay(schedulerOptions(3, 4));
    expectIdentical(a, b, "replay twice");
}

/** The tsan CI job runs this: many slots, many host threads, a shared
 * eval pool, and concurrent poll()/cancel() traffic from outside. */
TEST(ServiceStress, MultiWorkerDrainWithLivePollers)
{
    ServiceOptions o;
    o.slots = 8;
    o.host_threads = 8;
    o.eval_threads = 4;
    ConversionService svc(o);
    std::vector<int> ids;
    for (int i = 0; i < 24; ++i) {
        JobSpec spec;
        spec.tenant = "t" + std::to_string(i % 3);
        spec.priority = static_cast<Priority>(i % 3);
        spec.arrival_minutes = 0.1 * i;
        spec.source = (i % 2 == 0) ? kSumSource : kScaleSource;
        spec.options =
            fastOptions(i % 2 == 0 ? "sum" : "scale", 1 + i);
        ids.push_back(svc.submit(spec));
    }

    std::atomic<bool> done{false};
    std::thread poller([&] {
        while (!done.load()) {
            for (int id : ids)
                (void)svc.poll(id);
            (void)svc.stats();
            (void)svc.simNow();
            std::this_thread::yield();
        }
    });
    std::thread canceller([&] {
        // Live-cancel a few jobs while the drain runs.
        svc.cancel(ids[5]);
        svc.cancel(ids[11]);
        svc.cancel(ids[17]);
    });
    svc.drain();
    done.store(true);
    poller.join();
    canceller.join();

    SchedulerStats stats = svc.stats();
    EXPECT_EQ(stats.jobs_submitted, 24);
    EXPECT_EQ(stats.jobs_completed + stats.jobs_cancelled +
                  stats.jobs_failed,
              24);
    EXPECT_EQ(stats.jobs_failed, 0);
    for (int id : ids)
        EXPECT_NO_THROW(svc.collect(id));
}

} // namespace
} // namespace heterogen::service
