/** @file Tests for the repair engine: localizer, transforms, diffstat,
 * and small end-to-end searches. */

#include <gtest/gtest.h>

#include "cir/parser.h"
#include "cir/printer.h"
#include "cir/sema.h"
#include "core/heterogen.h"
#include "hls/synth_check.h"
#include "interp/interp.h"
#include "repair/diffstat.h"
#include "repair/difftest.h"
#include "repair/localizer.h"
#include "support/strings.h"
#include "repair/transforms.h"

namespace heterogen::repair {
namespace {

using cir::parse;
using hls::ErrorCategory;
using interp::KernelArg;

/** Parse + analyze; return TU. */
cir::TuPtr
program(const std::string &src)
{
    auto tu = parse(src);
    cir::analyzeOrDie(*tu);
    return tu;
}

RepairContext
makeCtx(cir::TranslationUnit &tu, hls::HlsConfig &config,
        const std::string &symbol = "")
{
    return RepairContext{tu, config, symbol, nullptr, nullptr, false};
}

// --- localizer ---------------------------------------------------------------

TEST(Localizer, ClassifiesPaperMessages)
{
    auto cat = [](const char *msg) {
        auto c = classifyMessage(msg);
        return c ? *c : static_cast<ErrorCategory>(-1);
    };
    EXPECT_EQ(cat("Synthesizability check failed: recursive functions "
                  "are not supported."),
              ErrorCategory::DynamicDataStructures);
    EXPECT_EQ(cat("dynamic memory allocation/deallocation is not "
                  "supported"),
              ErrorCategory::DynamicDataStructures);
    EXPECT_EQ(cat("unsupported memory access on variable line_buf_a "
                  "which is (or contains) an array with unknown size at "
                  "compile time"),
              ErrorCategory::DynamicDataStructures);
    EXPECT_EQ(cat("Call of overloaded 'pow()' is ambiguous"),
              ErrorCategory::UnsupportedDataTypes);
    EXPECT_EQ(cat("Argument 'data' failed dataflow checking"),
              ErrorCategory::DataflowOptimization);
    EXPECT_EQ(cat("Pre-synthesis failed: unroll factor 50"),
              ErrorCategory::LoopParallelization);
    EXPECT_EQ(cat("Argument 'this' has an unsynthesizable struct type"),
              ErrorCategory::StructAndUnion);
    EXPECT_EQ(cat("Cannot find the top function in the design"),
              ErrorCategory::TopFunction);
    EXPECT_FALSE(classifyMessage("the weather is nice").has_value());
}

TEST(Localizer, ExtractsQuotedSymbol)
{
    auto loc = localizeMessage(
        "ERROR: [SYNCHK 200-61] unsupported memory access on variable "
        "'line_buf' which is (or contains) an array with unknown size");
    ASSERT_TRUE(loc.has_value());
    EXPECT_EQ(loc->symbol, "line_buf");
    EXPECT_EQ(loc->category, ErrorCategory::DynamicDataStructures);
}

// --- arena / pointer / stack chain -----------------------------------------------

const char *kTreeProgram = R"(
    struct Node { int val; Node *left; Node *right; };
    int total = 0;
    Node *root = 0;
    void insert(int v) {
        Node *fresh = (Node*)malloc(sizeof(Node));
        fresh->val = v;
        fresh->left = (Node*)0;
        fresh->right = (Node*)0;
        if (root == 0) { root = fresh; return; }
        Node *curr = root;
        while (1) {
            if (v < curr->val) {
                if (curr->left == 0) { curr->left = fresh; return; }
                curr = curr->left;
            } else {
                if (curr->right == 0) { curr->right = fresh; return; }
                curr = curr->right;
            }
        }
    }
    void traverse(Node *curr) {
        if (curr != 0) {
            total = total + curr->val;
            traverse(curr->left);
            traverse(curr->right);
        }
    }
    int kernel(int n) {
        if (n > 4000) { n = 4000; }
        root = (Node*)0;
        total = 0;
        for (int i = 0; i < n; i++) { insert((i * 37) % 101); }
        traverse(root);
        return total;
    }
)";

TEST(Transforms, InsertArenaCreatesAllocator)
{
    auto tu = program(kTreeProgram);
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    auto ctx = makeCtx(*tu, config);
    ASSERT_TRUE(xform::insertArena(ctx));
    EXPECT_NE(tu->findGlobal("Node_arr"), nullptr);
    EXPECT_NE(tu->findGlobal("Node_arr_top"), nullptr);
    EXPECT_NE(tu->findGlobal("Node_arr_cap"), nullptr);
    EXPECT_NE(tu->findFunction("Node_malloc"), nullptr);
    std::string text = cir::print(*tu);
    EXPECT_EQ(text.find("malloc(sizeof(struct Node))"),
              std::string::npos);
    // Idempotent: second application is a no-op... the arena exists and
    // no malloc calls remain.
    EXPECT_FALSE(xform::insertArena(ctx));
}

TEST(Transforms, PointerToIndexRequiresArena)
{
    auto tu = program(kTreeProgram);
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    auto ctx = makeCtx(*tu, config);
    EXPECT_FALSE(xform::pointerToIndex(ctx))
        << "dependence: pointer($v1) must fail before insert(...)";
    ASSERT_TRUE(xform::insertArena(ctx));
    ASSERT_TRUE(xform::pointerToIndex(ctx));
    std::string text = cir::print(*tu);
    EXPECT_EQ(text.find("Node *"), std::string::npos);
    EXPECT_NE(text.find("Node_arr["), std::string::npos);
}

TEST(Transforms, ArenaChainPreservesBehavior)
{
    auto orig = program(kTreeProgram);
    auto tu = program(kTreeProgram);
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    auto ctx = makeCtx(*tu, config);
    ASSERT_TRUE(xform::insertArena(ctx));
    ASSERT_TRUE(xform::pointerToIndex(ctx));
    ASSERT_TRUE(cir::analyze(*tu).ok());
    for (long n : {0, 1, 7, 40}) {
        auto a = interp::runProgram(*orig, "kernel",
                                    {KernelArg::ofInt(n)});
        auto b = interp::runProgram(*tu, "kernel",
                                    {KernelArg::ofInt(n)});
        ASSERT_TRUE(a.ok) << a.trap;
        ASSERT_TRUE(b.ok) << b.trap;
        EXPECT_EQ(a.ret.i, b.ret.i) << "n " << n;
    }
}

TEST(Transforms, StackTransformRemovesRecursion)
{
    auto tu = program(kTreeProgram);
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    auto ctx = makeCtx(*tu, config, "traverse");
    ASSERT_TRUE(xform::insertArena(ctx));
    ASSERT_TRUE(xform::pointerToIndex(ctx));
    ASSERT_TRUE(xform::stackTransform(ctx));
    ASSERT_TRUE(cir::analyze(*tu).ok()) << cir::print(*tu);
    auto recursive = hls::recursiveFunctions(*tu);
    for (const auto &fn : recursive)
        EXPECT_NE(fn, "traverse");
    // Behaviour preserved vs the original.
    auto orig = program(kTreeProgram);
    for (long n : {0, 1, 12, 60}) {
        auto a = interp::runProgram(*orig, "kernel",
                                    {KernelArg::ofInt(n)});
        auto b = interp::runProgram(*tu, "kernel",
                                    {KernelArg::ofInt(n)});
        ASSERT_TRUE(b.ok) << b.trap << "\n" << cir::print(*tu);
        EXPECT_EQ(a.ret.i, b.ret.i) << "n " << n;
    }
}

TEST(Transforms, ResizeDoublesGeneratedArrays)
{
    auto tu = program(kTreeProgram);
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    auto ctx = makeCtx(*tu, config);
    ASSERT_TRUE(xform::insertArena(ctx));
    long before = tu->findGlobal("Node_arr")->type->arraySize();
    ASSERT_TRUE(xform::resizeGeneratedArrays(ctx));
    EXPECT_EQ(tu->findGlobal("Node_arr")->type->arraySize(), 2 * before);
    auto *cap = tu->findGlobal("Node_arr_cap");
    EXPECT_EQ(static_cast<const cir::IntLit &>(*cap->init).value,
              2 * before);
}

TEST(Transforms, ArenaExhaustionIsDetectableThenFixedByResize)
{
    // 1500 insertions exceed the default 1024-slot arena.
    auto orig = program(kTreeProgram);
    auto tu = program(kTreeProgram);
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    auto ctx = makeCtx(*tu, config);
    ASSERT_TRUE(xform::insertArena(ctx));
    ASSERT_TRUE(xform::pointerToIndex(ctx));
    auto a = interp::runProgram(*orig, "kernel",
                                {KernelArg::ofInt(1500)});
    auto b = interp::runProgram(*tu, "kernel", {KernelArg::ofInt(1500)});
    ASSERT_TRUE(a.ok);
    EXPECT_FALSE(a.sameBehavior(b))
        << "undersized arena must diverge so tests can catch it";
    ASSERT_TRUE(xform::resizeGeneratedArrays(ctx));
    auto c = interp::runProgram(*tu, "kernel", {KernelArg::ofInt(1500)});
    EXPECT_TRUE(a.sameBehavior(c)) << "resized arena restores behaviour";
}

TEST(Transforms, PointerToIndexHandlesArrayOfStructMalloc)
{
    // malloc(n * sizeof(T)) with p[i].field access (the histogram
    // pattern): subscripts on converted pointers redirect into the
    // arena with the index offset added.
    const char *src = R"(
        struct Bin { int count; Bin *next; };
        int kernel(int n) {
            if (n < 0) { n = 0; }
            if (n > 64) { n = 64; }
            Bin *bins = (Bin*)malloc(8 * sizeof(Bin));
            for (int b = 0; b < 8; b++) { bins[b].count = 0; }
            for (int i = 0; i < n; i++) {
                bins[i % 8].count = bins[i % 8].count + 1;
            }
            int total = 0;
            for (int b = 0; b < 8; b++) { total += bins[b].count * b; }
            free(bins);
            return total;
        }
    )";
    auto orig = program(src);
    auto tu = program(src);
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    auto ctx = makeCtx(*tu, config);
    ASSERT_TRUE(xform::insertArena(ctx));
    ASSERT_TRUE(xform::pointerToIndex(ctx));
    ASSERT_TRUE(cir::analyze(*tu).ok()) << cir::print(*tu);
    EXPECT_TRUE(hls::checkSynthesizability(*tu, config).empty())
        << cir::print(*tu);
    for (long n : {0, 5, 40, 64}) {
        auto a = interp::runProgram(*orig, "kernel",
                                    {KernelArg::ofInt(n)});
        auto b = interp::runProgram(*tu, "kernel",
                                    {KernelArg::ofInt(n)});
        ASSERT_TRUE(a.ok) << a.trap;
        ASSERT_TRUE(b.ok) << b.trap << "\n" << cir::print(*tu);
        EXPECT_EQ(a.ret.i, b.ret.i) << "n " << n;
    }
}

// --- type transforms ------------------------------------------------------------

TEST(Transforms, TypeTransformReplacesLongDouble)
{
    auto tu = program(R"(
        int kernel(int in) {
            long double in_ld = in;
            in_ld = in_ld + 1;
            return in_ld;
        }
    )");
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    auto ctx = makeCtx(*tu, config);
    ASSERT_TRUE(xform::typeTransform(ctx));
    std::string text = cir::print(*tu);
    EXPECT_EQ(text.find("long double"), std::string::npos);
    EXPECT_NE(text.find("fpga_float<8,71>"), std::string::npos);
    // Mixing error remains until type_casting runs.
    auto errors = hls::checkSynthesizability(*tu, config);
    EXPECT_FALSE(errors.empty());
    ASSERT_TRUE(xform::typeCasting(ctx));
    errors = hls::checkSynthesizability(*tu, config);
    EXPECT_TRUE(errors.empty()) << errors.front().str();
}

TEST(Transforms, TypeChainPreservesBehavior)
{
    const char *src = R"(
        int kernel(int in) {
            long double in_ld = in;
            in_ld = in_ld + 1;
            return in_ld;
        }
    )";
    auto orig = program(src);
    auto tu = program(src);
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    auto ctx = makeCtx(*tu, config);
    ASSERT_TRUE(xform::typeTransform(ctx));
    ASSERT_TRUE(xform::typeCasting(ctx));
    for (long v : {0, 1, 41, -3, 1000}) {
        auto a = interp::runProgram(*orig, "kernel",
                                    {KernelArg::ofInt(v)});
        auto b = interp::runProgram(*tu, "kernel",
                                    {KernelArg::ofInt(v)});
        EXPECT_EQ(a.ret.i, b.ret.i);
    }
}

TEST(Transforms, OpOverloadGeneratesHelper)
{
    auto tu = program(R"(
        int kernel(int in) {
            long double v = in;
            v = v + 1;
            return v;
        }
    )");
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    auto ctx = makeCtx(*tu, config);
    ASSERT_TRUE(xform::typeTransform(ctx));
    ASSERT_TRUE(xform::typeCasting(ctx));
    ASSERT_TRUE(xform::opOverload(ctx));
    EXPECT_NE(tu->findFunction("sum_80"), nullptr)
        << "the paper's sum_80 helper for fpga_float<8,71>";
    ASSERT_TRUE(cir::analyze(*tu).ok());
    auto r = interp::runProgram(*tu, "kernel", {KernelArg::ofInt(5)});
    ASSERT_TRUE(r.ok) << r.trap;
    EXPECT_EQ(r.ret.i, 6);
}

TEST(Transforms, BitwidthNarrowUsesProfile)
{
    auto tu = program(R"(
        int kernel(int n) {
            int ret = 0;
            for (int i = 0; i < n; i++) { ret = ret + 1; }
            return ret;
        }
    )");
    interp::ValueProfile profile;
    interp::RunOptions opts;
    opts.profile = &profile;
    interp::runProgram(*tu, "kernel", {KernelArg::ofInt(83)}, opts);
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    RepairContext ctx{*tu, config, "", &profile, nullptr, false};
    ASSERT_TRUE(xform::bitwidthNarrow(ctx));
    std::string text = cir::print(*tu);
    EXPECT_NE(text.find("fpga_uint<7> ret"), std::string::npos)
        << "ret has max 83 -> 7 bits, as in the paper's example\n"
        << text;
    // Behaviour preserved for inputs within the profiled range.
    auto r = interp::runProgram(*tu, "kernel", {KernelArg::ofInt(83)});
    EXPECT_EQ(r.ret.i, 83);
}

// --- struct transforms ------------------------------------------------------------

const char *kStructProgram = R"(
    struct If2 {
        hls::stream<int> &in;
        hls::stream<int> &out;
        int do1() { out.write(in.read() * 2); return 0; }
    };
    void kernel(hls::stream<int> &in, hls::stream<int> &out) {
        #pragma HLS dataflow
        hls::stream<int> tmp;
        If2{ in, tmp }.do1();
        If2{ tmp, out }.do1();
    }
)";

TEST(Transforms, ConstructorThenStreamStaticFixesStructError)
{
    auto tu = program(kStructProgram);
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    auto ctx = makeCtx(*tu, config, "If2");
    ASSERT_TRUE(xform::insertConstructor(ctx));
    ASSERT_NE(tu->findStruct("If2")->ctor, nullptr);
    auto ctx2 = makeCtx(*tu, config, "tmp");
    ASSERT_TRUE(xform::streamStatic(ctx2));
    auto errors = hls::checkSynthesizability(*tu, config);
    EXPECT_TRUE(errors.empty()) << errors.front().str();
    // Functional check: the two stages each read one element and double
    // it, so the first input element comes out multiplied by four.
    auto r = interp::runProgram(*tu, "kernel",
                                {KernelArg::ofInts({1, 2, 3}),
                                 KernelArg::ofInts({})});
    ASSERT_TRUE(r.ok) << r.trap;
    EXPECT_EQ(r.out_args[1].ints, (std::vector<long>{4}));
}

TEST(Transforms, FlattenThenInstUpdateAlternative)
{
    auto tu = program(kStructProgram);
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    auto ctx = makeCtx(*tu, config, "If2");
    EXPECT_FALSE(xform::updateInstances(ctx))
        << "inst_update depends on flatten";
    ASSERT_TRUE(xform::flattenStruct(ctx));
    ASSERT_TRUE(xform::updateInstances(ctx));
    EXPECT_NE(tu->findFunction("If2_do1"), nullptr);
    std::string text = cir::print(*tu);
    EXPECT_EQ(text.find("If2{"), std::string::npos) << text;
    // The struct error is gone even without a constructor, but the
    // non-static stream still needs stream_static... flattened code no
    // longer hits the struct checker, so the program is clean.
    ASSERT_TRUE(cir::analyze(*tu).ok()) << text;
    auto r = interp::runProgram(*tu, "kernel",
                                {KernelArg::ofInts({5}),
                                 KernelArg::ofInts({})});
    ASSERT_TRUE(r.ok) << r.trap << "\n" << text;
    EXPECT_EQ(r.out_args[1].ints, (std::vector<long>{20}));
}

TEST(Transforms, UnionToStruct)
{
    auto tu = program(R"(
        union Pack { int i; int j; };
        int kernel(int x) { return x; }
    )");
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    auto ctx = makeCtx(*tu, config);
    ASSERT_TRUE(xform::unionToStruct(ctx));
    EXPECT_FALSE(tu->findStruct("Pack")->is_union);
    EXPECT_TRUE(hls::checkSynthesizability(*tu, config).empty());
}

// --- pragma / config transforms ----------------------------------------------------

TEST(Transforms, FixPartitionFactorPicksDivisor)
{
    auto tu = program(R"(
        int A[13];
        int kernel() {
            int acc = 0;
            for (int i = 0; i < 13; i++) {
                #pragma HLS array_partition variable=A factor=4
                acc += A[i];
            }
            return acc;
        }
    )");
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    auto ctx = makeCtx(*tu, config);
    ASSERT_TRUE(xform::fixPartitionFactor(ctx));
    EXPECT_TRUE(hls::checkSynthesizability(*tu, config).empty());
}

TEST(Transforms, ReduceUnrollFixesInteraction)
{
    auto tu = program(R"(
        void kernel(int a[64]) {
            #pragma HLS dataflow
            for (int i = 0; i < 64; i++) {
                #pragma HLS unroll factor=50
                a[i] = a[i] * 2;
            }
        }
    )");
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    auto ctx = makeCtx(*tu, config);
    ASSERT_TRUE(xform::reduceUnroll(ctx));
    EXPECT_TRUE(hls::checkSynthesizability(*tu, config).empty());
}

TEST(Transforms, PerformancePragmaChain)
{
    auto tu = program(R"(
        int kernel(int a[64]) {
            int acc = 0;
            for (int i = 0; i < 64; i++) { acc += a[i] * 3; }
            return acc;
        }
    )");
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    auto ctx = makeCtx(*tu, config);
    ASSERT_TRUE(xform::insertPipeline(ctx));
    ASSERT_TRUE(xform::insertUnroll(ctx));
    ASSERT_TRUE(xform::insertArrayPartition(ctx));
    EXPECT_TRUE(hls::checkSynthesizability(*tu, config).empty())
        << cir::print(*tu);
    std::string text = cir::print(*tu);
    EXPECT_NE(text.find("pipeline"), std::string::npos);
    EXPECT_NE(text.find("unroll"), std::string::npos);
    EXPECT_NE(text.find("array_partition"), std::string::npos);
}

TEST(Transforms, TopFunctionFixes)
{
    auto tu = program("int my_kernel(int x) { return x; }");
    hls::HlsConfig config = hls::HlsConfig::forTop("missing_top");
    config.clock_mhz = 9999;
    config.device = "bogus";
    auto ctx = makeCtx(*tu, config);
    ASSERT_TRUE(xform::fixTopFunction(ctx));
    EXPECT_EQ(config.top_function, "my_kernel");
    ASSERT_TRUE(xform::fixClock(ctx));
    EXPECT_EQ(config.clock_mhz, 250.0);
    ASSERT_TRUE(xform::fixDevice(ctx));
    EXPECT_EQ(config.device, "xcvu9p");
    EXPECT_TRUE(hls::checkSynthesizability(*tu, config).empty());
}

// --- diffstat --------------------------------------------------------------------

TEST(DiffStat, CountsAddedAndRemoved)
{
    DiffStat d = diffLines("a\nb\nc\n", "a\nx\nb\nc\ny\n");
    EXPECT_EQ(d.added, 2);
    EXPECT_EQ(d.removed, 0);
    EXPECT_EQ(d.common, 3);
    EXPECT_EQ(d.delta(), 2);
    DiffStat e = diffLines("a\nb\n", "a\n");
    EXPECT_EQ(e.removed, 1);
    DiffStat same = diffLines("a\nb\n", "a\nb\n");
    EXPECT_EQ(same.delta(), 0);
}

// --- difftest --------------------------------------------------------------------

TEST(DiffTest, DetectsDivergence)
{
    auto orig = program("int kernel(int x) { return x + 1; }");
    auto good = program("int kernel(int x) { return 1 + x; }");
    auto bad = program("int kernel(int x) { return x + 2; }");
    fuzz::TestSuite suite;
    for (long v : {1, 2, 3, -7})
        suite.add({KernelArg::ofInt(v)});
    hls::HlsConfig config = hls::HlsConfig::forTop("kernel");
    auto ok = diffTest(*orig, "kernel", *good, config, suite);
    EXPECT_TRUE(ok.allIdentical());
    EXPECT_EQ(ok.total, 4);
    auto fail = diffTest(*orig, "kernel", *bad, config, suite);
    EXPECT_EQ(fail.identical, 0);
    EXPECT_EQ(fail.failing.size(), 4u);
    EXPECT_GT(fail.sim_minutes, 0.0);
}

// --- end-to-end on the working example ----------------------------------------------

TEST(EndToEnd, RepairsWorkingExample)
{
    core::HeteroGen engine(kTreeProgram);
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.fuzz.max_executions = 200;
    opts.fuzz.mutations_per_input = 8;
    opts.fuzz.max_steps_per_run = 300000;
    opts.search.budget_minutes = 500;
    opts.search.difftest_sample = 12;
    auto report = engine.run(opts);
    EXPECT_TRUE(report.search.hls_compatible)
        << "edits: " << heterogen::join(report.search.applied_order, ", ");
    EXPECT_TRUE(report.search.behavior_preserved);
    EXPECT_GT(report.search.applied_order.size(), 2u);
    EXPECT_GT(report.testgen.suite.size(), 1u);
    EXPECT_GT(report.final_loc, report.orig_loc);
    // Final program is HLS-clean.
    auto errors = hls::checkSynthesizability(*report.search.program,
                                             report.search.config);
    EXPECT_TRUE(errors.empty()) << errors.front().str();
}

TEST(EndToEnd, RepairsTypeExample)
{
    const char *src = R"(
        int kernel(int in) {
            long double in_ld = in;
            in_ld = in_ld + 1;
            return in_ld;
        }
    )";
    core::HeteroGen engine(src);
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.fuzz.max_executions = 200;
    opts.search.budget_minutes = 200;
    auto report = engine.run(opts);
    EXPECT_TRUE(report.ok())
        << "edits: " << heterogen::join(report.search.applied_order, ", ");
    EXPECT_NE(report.hls_source.find("fpga_float"), std::string::npos);
}

TEST(EndToEnd, RepairsStructExample)
{
    core::HeteroGen engine(kStructProgram);
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.fuzz.max_executions = 200;
    opts.search.budget_minutes = 300;
    auto report = engine.run(opts);
    EXPECT_TRUE(report.ok())
        << "edits: " << heterogen::join(report.search.applied_order, ", ");
}

} // namespace
} // namespace heterogen::repair
