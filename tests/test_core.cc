/** @file End-to-end pipeline tests over the P1-P10 subjects, including
 * the ablation and HeteroRefactor baselines (Table 3/5/Figure 9 logic).
 */

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/heterogen.h"
#include "repair/difftest.h"
#include "hls/synth_check.h"
#include "subjects/subjects.h"
#include "support/strings.h"

namespace heterogen::core {
namespace {

/** Fast-but-representative options for CI-scale runs. */
HeteroGenOptions
testOptions(const subjects::Subject &subject)
{
    HeteroGenOptions opts;
    opts.kernel = subject.kernel;
    opts.host_function = subject.host;
    opts.initial_top = subject.initial_top;
    opts.fuzz.rng_seed = subject.fuzz_seed;
    opts.fuzz.max_executions = 700;
    opts.fuzz.mutations_per_input = 8;
    opts.fuzz.max_steps_per_run = 300000;
    opts.fuzz.min_suite_size = 16;
    opts.search.budget_minutes = 400;
    opts.search.max_iterations = 300;
    opts.search.difftest_sample = 10;
    opts.search.rng_seed = subject.fuzz_seed * 31 + 7;
    return opts;
}

class PipelineTest : public ::testing::TestWithParam<const char *>
{
  protected:
    const subjects::Subject &subject() const
    {
        return subjects::subjectById(GetParam());
    }
};

TEST_P(PipelineTest, RepairsSubjectEndToEnd)
{
    const subjects::Subject &s = subject();
    HeteroGen engine(s.source);
    auto report = engine.run(testOptions(s));
    EXPECT_TRUE(report.search.hls_compatible)
        << s.id << " edits: "
        << join(report.search.applied_order, ", ");
    EXPECT_TRUE(report.search.behavior_preserved) << s.id;
    // The final program must be HLS-clean under its configuration.
    auto errors = hls::checkSynthesizability(*report.search.program,
                                             report.search.config);
    EXPECT_TRUE(errors.empty()) << s.id << ": " << errors.front().str();
    // And the report must account for its work.
    EXPECT_GT(report.testgen.suite.size(), 0u);
    EXPECT_GT(report.total_minutes, 0.0);
    EXPECT_GT(report.search.full_hls_invocations, 0);
}

INSTANTIATE_TEST_SUITE_P(AllSubjects, PipelineTest,
                         ::testing::Values("P1", "P2", "P3", "P4", "P5",
                                           "P6", "P7", "P8", "P9",
                                           "P10"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(Pipeline, P1HasNoPerformanceImprovingEdit)
{
    const auto &s = subjects::subjectById("P1");
    HeteroGen engine(s.source);
    auto report = engine.run(testOptions(s));
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report.search.improved)
        << "P1 is pure arithmetic without loops or arrays (Table 3)";
}

TEST(Pipeline, LoopSubjectGetsFaster)
{
    const auto &s = subjects::subjectById("P10");
    HeteroGen engine(s.source);
    auto report = engine.run(testOptions(s));
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report.search.improved);
    EXPECT_LT(report.search.fpga_ms, report.search.orig_cpu_ms);
}

TEST(Pipeline, BitwidthNarrowingAppearsInOutput)
{
    // P5's traversal accumulator has a small profiled range, so the
    // initial HLS version narrows it (the paper's fpga_uint<7> example).
    const auto &s = subjects::subjectById("P5");
    HeteroGen engine(s.source);
    auto report = engine.run(testOptions(s));
    ASSERT_TRUE(report.ok());
    EXPECT_NE(report.hls_source.find("fpga_uint<"), std::string::npos)
        << report.hls_source;
}

TEST(Pipeline, TopFunctionErrorIsRepaired)
{
    const auto &s = subjects::subjectById("P9");
    ASSERT_FALSE(s.initial_top.empty());
    HeteroGen engine(s.source);
    auto report = engine.run(testOptions(s));
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.search.config.top_function, s.kernel)
        << "the top_name edit must point the config at the real kernel";
}

TEST(Pipeline, StackTransformShowsUpForRecursiveSubjects)
{
    const auto &s = subjects::subjectById("P5");
    HeteroGen engine(s.source);
    auto report = engine.run(testOptions(s));
    ASSERT_TRUE(report.ok());
    bool has_stack = false;
    for (const auto &e : report.search.applied_order)
        has_stack |= contains(e, "stack_trans");
    EXPECT_TRUE(has_stack)
        << join(report.search.applied_order, ", ");
    EXPECT_NE(report.hls_source.find("traverse_stk_"),
              std::string::npos);
}

TEST(Pipeline, GeneratedTestsCatchWhatExistingTestsMiss)
{
    // The paper's §6.2 case study: repairing P3 against only its sparse
    // pre-existing tests accepts an undersized finitization; the
    // generated suite then exposes behavioural divergence, which the
    // full pipeline resolves via the resize edit.
    const auto &s = subjects::subjectById("P3");
    HeteroGen engine(s.source);

    // 1. Repair with the handcrafted tests only.
    auto tu = engine.program().clone();
    fuzz::TestSuite existing;
    for (const auto &args : s.existing_tests)
        existing.add(args);
    interp::ValueProfile profile;
    repair::SearchOptions sopts;
    sopts.budget_minutes = 400;
    sopts.difftest_sample = 0;
    auto weak = repair::repairSearch(engine.program(), s.kernel, *tu,
                                     hls::HlsConfig::forTop(s.kernel),
                                     existing, profile, sopts);
    ASSERT_TRUE(weak.hls_compatible)
        << join(weak.applied_order, ", ");

    // 2. Generate tests the paper's way and differentially test the
    //    weakly-validated version.
    auto opts = testOptions(s);
    fuzz::FuzzOptions fopts = opts.fuzz;
    fopts.host_function = s.host;
    fopts.rng_seed = s.fuzz_seed;
    auto generated = fuzz::fuzzKernel(engine.program(), s.kernel,
                                      engine.sema(), fopts);
    auto dt = repair::diffTest(engine.program(), s.kernel,
                               *weak.program, weak.config,
                               generated.suite, 0);
    EXPECT_LT(dt.passRatio(), 1.0)
        << "generated tests must expose the undersized finitization";

    // 3. The full pipeline (generated tests in the loop) fixes it.
    auto strong = engine.run(opts);
    ASSERT_TRUE(strong.ok());
    bool resized = false;
    for (const auto &e : strong.search.applied_order)
        resized |= contains(e, "resize");
    EXPECT_TRUE(resized)
        << join(strong.search.applied_order, ", ");
}

// --- baselines -----------------------------------------------------------

TEST(Baselines, WithoutCheckerCompilesEveryAttempt)
{
    const auto &s = subjects::subjectById("P5");
    HeteroGen engine(s.source);
    auto hg = engine.run(testOptions(s));
    auto nochk = engine.run(withoutChecker(testOptions(s)));
    ASSERT_TRUE(nochk.ok());
    EXPECT_DOUBLE_EQ(nochk.search.hlsInvocationRatio(), 1.0);
    EXPECT_LT(hg.search.hlsInvocationRatio(), 1.0);
    EXPECT_EQ(nochk.search.style_checks, 0);
}

TEST(Baselines, WithoutDependenceIsSlower)
{
    const auto &s = subjects::subjectById("P2");
    HeteroGen engine(s.source);
    auto opts = testOptions(s);
    auto hg = engine.run(opts);
    auto nodep_opts = withoutDependence(opts);
    nodep_opts.search.budget_minutes = 720;
    nodep_opts.search.max_iterations = 4000;
    auto nodep = engine.run(nodep_opts);
    ASSERT_TRUE(hg.ok());
    EXPECT_GT(nodep.search.minutes_to_success,
              hg.search.minutes_to_success)
        << "random-order exploration must cost more simulated time";
}

TEST(Baselines, HeteroRefactorHandlesOnlyDynamicSubjects)
{
    // Table 5: 20% vs 100% transpilation success.
    std::set<std::string> expected_success = {"P3", "P8"};
    for (const char *id :
         {"P1", "P2", "P3", "P5", "P6", "P8", "P10"}) {
        const auto &s = subjects::subjectById(id);
        HeteroGen engine(s.source);
        auto opts = heteroRefactor(testOptions(s));
        auto report = engine.run(opts);
        EXPECT_EQ(report.ok(), expected_success.count(id) == 1)
            << id << " edits: "
            << join(report.search.applied_order, ", ");
    }
}

TEST(Baselines, HeteroRefactorOutputSlowerThanHeteroGen)
{
    // HR applies no performance pragmas, so its P3/P8 outputs trail
    // HeteroGen's (the paper reports 1.53x slower).
    const auto &s = subjects::subjectById("P8");
    HeteroGen engine(s.source);
    auto hg = engine.run(testOptions(s));
    auto hr = engine.run(heteroRefactor(testOptions(s)));
    ASSERT_TRUE(hg.ok());
    ASSERT_TRUE(hr.ok());
    EXPECT_GT(hr.search.fpga_ms, hg.search.fpga_ms);
}

} // namespace
} // namespace heterogen::core
