/** @file Public-API contract tests: instance reuse, error reporting,
 * behavioural-equality semantics. */

#include <gtest/gtest.h>

#include "cir/parser.h"
#include "cir/sema.h"
#include "core/heterogen.h"
#include "interp/interp.h"

namespace heterogen {
namespace {

using interp::KernelArg;

TEST(InterpreterApi, RunsAreIsolated)
{
    auto tu = cir::parse(R"(
        int counter = 0;
        int kernel(int d) { counter = counter + d; return counter; }
    )");
    cir::analyzeOrDie(*tu);
    interp::Interpreter interp(*tu);
    // Globals re-initialize per run: no leakage between invocations.
    EXPECT_EQ(interp.run("kernel", {KernelArg::ofInt(5)}).ret.i, 5);
    EXPECT_EQ(interp.run("kernel", {KernelArg::ofInt(5)}).ret.i, 5);
    EXPECT_EQ(interp.run("kernel", {KernelArg::ofInt(7)}).ret.i, 7);
}

TEST(InterpreterApi, MissingFunctionIsATrapNotACrash)
{
    auto tu = cir::parse("int f(int x) { return x; }");
    cir::analyzeOrDie(*tu);
    auto r = interp::runProgram(*tu, "nope", {});
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.trap.find("no such function"), std::string::npos);
}

TEST(InterpreterApi, ArgumentArityMismatchTraps)
{
    auto tu = cir::parse("int f(int x) { return x; }");
    cir::analyzeOrDie(*tu);
    EXPECT_FALSE(interp::runProgram(*tu, "f", {}).ok);
    EXPECT_FALSE(interp::runProgram(*tu, "f",
                                    {KernelArg::ofInt(1),
                                     KernelArg::ofInt(2)})
                     .ok);
}

TEST(InterpreterApi, BothTrappingCountsAsSameBehavior)
{
    auto tu = cir::parse("int f(int x) { return 10 / x; }");
    cir::analyzeOrDie(*tu);
    auto a = interp::runProgram(*tu, "f", {KernelArg::ofInt(0)});
    auto b = interp::runProgram(*tu, "f", {KernelArg::ofInt(0)});
    ASSERT_FALSE(a.ok);
    EXPECT_TRUE(a.sameBehavior(b));
    auto ok = interp::runProgram(*tu, "f", {KernelArg::ofInt(2)});
    EXPECT_FALSE(a.sameBehavior(ok));
}

TEST(HeteroGenApi, ParseErrorsSurfaceAsFatalError)
{
    EXPECT_THROW(core::HeteroGen engine("int f( {"), FatalError);
    EXPECT_THROW(core::HeteroGen engine("int f() { return ghost; }"),
                 FatalError);
}

TEST(HeteroGenApi, MissingKernelIsFatal)
{
    core::HeteroGen engine("int f(int x) { return x; }");
    core::HeteroGenOptions opts;
    opts.kernel = "does_not_exist";
    EXPECT_THROW(engine.run(opts), FatalError);
    core::HeteroGenOptions empty;
    EXPECT_THROW(engine.run(empty), FatalError);
}

TEST(HeteroGenApi, RunIsRepeatable)
{
    core::HeteroGen engine(
        "int kernel(int x) { long double v = x; return v; }");
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.fuzz.max_executions = 100;
    opts.fuzz.rng_seed = 5;
    auto a = engine.run(opts);
    auto b = engine.run(opts);
    EXPECT_EQ(a.ok(), b.ok());
    EXPECT_EQ(a.hls_source, b.hls_source);
    EXPECT_EQ(a.search.applied_order, b.search.applied_order);
}

TEST(HeteroGenApi, ReportAccountingIsConsistent)
{
    core::HeteroGen engine(
        "int kernel(int x) { long double v = x; return v; }");
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.fuzz.max_executions = 100;
    auto report = engine.run(opts);
    ASSERT_TRUE(report.ok());
    EXPECT_NEAR(report.total_minutes,
                report.testgen.sim_minutes + report.search.sim_minutes,
                1e-9);
    EXPECT_GT(report.final_loc, 0);
    EXPECT_GT(report.orig_loc, 0);
}

} // namespace
} // namespace heterogen
