/** @file Streaming/dataflow workload class: fifo topology extraction,
 * deterministic hang detection, stall accounting, and the
 * hang-diagnostic -> stream-repair path end to end on the S1-S4
 * subjects. Property contracts pinned here:
 *   - deeper fifos never increase stall cycles (monotonicity);
 *   - the hang detector fires iff the region topology is unserialized
 *     (shared array traffic, producer skew, or rate-mismatch backlog
 *      beyond the configured depth);
 *   - repaired reports are bit-identical across eval_threads and
 *     re-runs.
 */

#include <gtest/gtest.h>

#include "cir/parser.h"
#include "core/heterogen.h"
#include "hls/dataflow.h"
#include "hls/errors.h"
#include "hls/fpga_model.h"
#include "repair/localizer.h"
#include "subjects/subjects.h"
#include "support/strings.h"

namespace heterogen {
namespace {

using hls::DataflowTopology;
using hls::ErrorCategory;
using hls::HlsConfig;
using hls::HlsError;

/** Parse a subject source and extract its kernel's topology. */
DataflowTopology
topologyOf(const std::string &source, const std::string &kernel,
           long stream_depth)
{
    static std::vector<cir::TuPtr> keep_alive;
    keep_alive.push_back(cir::parse(source));
    const cir::TranslationUnit &tu = *keep_alive.back();
    const cir::FunctionDecl *fn = tu.findFunction(kernel);
    EXPECT_NE(fn, nullptr);
    HlsConfig config = HlsConfig::forTop(kernel);
    config.stream_depth = stream_depth;
    return hls::extractTopology(tu, *fn, config);
}

const subjects::Subject &
streaming(const std::string &id)
{
    for (const subjects::Subject &s : subjects::streamingSubjects()) {
        if (s.id == id)
            return s;
    }
    ADD_FAILURE() << "unknown streaming subject " << id;
    static subjects::Subject none;
    return none;
}

// --- topology extraction ---------------------------------------------------

TEST(StreamTopology, ChainExtractsChannelAndSharedArray)
{
    DataflowTopology topo =
        topologyOf(streaming("S1").source, "chain_kernel", 2);
    ASSERT_EQ(topo.processes.size(), 3u);
    ASSERT_EQ(topo.channels.size(), 1u);
    EXPECT_EQ(topo.channels[0].name, "mid");
    EXPECT_EQ(topo.channels[0].tokens, 64);
    EXPECT_EQ(topo.channels[0].depth, 2);
    EXPECT_EQ(topo.channels[0].writer, 0);
    EXPECT_EQ(topo.channels[0].reader, 1);
    ASSERT_EQ(topo.shared_arrays.size(), 1u);
    EXPECT_EQ(topo.shared_arrays[0], "buf");
}

TEST(StreamTopology, ButterflyBankConflictInflatesReaderII)
{
    DataflowTopology topo =
        topologyOf(streaming("S4").source, "fft_kernel", 2);
    ASSERT_EQ(topo.processes.size(), 2u);
    EXPECT_EQ(topo.processes[0].ii, 1); // butterfly: 1 access per array
    EXPECT_EQ(topo.processes[1].ii, 4); // untwiddle: 8 taps on 2 ports
    ASSERT_EQ(topo.channels.size(), 1u);
    EXPECT_EQ(topo.channels[0].tokens, 2048);
    // Backlog: ceil(2048 * (4 - 1) / 4) = 1536 — beyond the legal
    // depth cap, so depth sizing alone cannot fix this subject.
    EXPECT_EQ(hls::requiredDepth(topo, topo.channels[0]), 1536);
}

TEST(StreamTopology, PlainArrayRegionHasNoChannels)
{
    // The legacy gate: a dataflow region without fifo channels keeps
    // its pre-streaming semantics (no streaming diagnostics at all).
    const char *plain = R"(
        void bump(int data[16]) {
            for (int i = 0; i < 16; i++) { data[i] = data[i] + 1; }
        }
        int kernel(int seedv) {
            #pragma HLS dataflow
            int data[16];
            for (int i = 0; i < 16; i++) { data[i] = seedv + i; }
            bump(data);
            bump(data);
            int acc = 0;
            for (int i = 0; i < 16; i++) { acc += data[i]; }
            return acc;
        }
    )";
    DataflowTopology topo = topologyOf(plain, "kernel", 2);
    EXPECT_TRUE(topo.channels.empty());
    EXPECT_TRUE(hls::detectHangs(topo).empty());
}

// --- hang detection --------------------------------------------------------

TEST(StreamHangs, FiresIffTopologyIsUnserialized)
{
    // Original sources hang; each expert port is serialized and clean.
    struct Case
    {
        const char *id;
        const char *code;   // expected diagnostic code
        const char *symbol; // expected localized symbol
    };
    const Case cases[] = {
        {"S1", "XFORM 203-715", "buf"},
        {"S2", "XFORM 203-715", "cbuf"},
        {"S3", "XFORM 203-713", "ns"},
        {"S4", "XFORM 203-713", "xs"},
    };
    for (const Case &c : cases) {
        const subjects::Subject &s = streaming(c.id);
        DataflowTopology broken = topologyOf(s.source, s.kernel, 2);
        std::vector<HlsError> errors = hls::detectHangs(broken);
        ASSERT_EQ(errors.size(), 1u) << c.id;
        EXPECT_EQ(errors[0].code, c.code) << c.id;
        EXPECT_EQ(errors[0].symbol, c.symbol) << c.id;
        EXPECT_EQ(errors[0].category, ErrorCategory::StreamingDataflow)
            << c.id;

        DataflowTopology fixed =
            topologyOf(s.manual_source, s.kernel, 2);
        EXPECT_FALSE(fixed.channels.empty()) << c.id;
        EXPECT_TRUE(hls::detectHangs(fixed).empty())
            << c.id << ": expert port must be hang-free";
    }
}

TEST(StreamHangs, DetectorIsDeterministic)
{
    const subjects::Subject &s = streaming("S3");
    DataflowTopology topo = topologyOf(s.source, s.kernel, 2);
    std::vector<HlsError> first = hls::detectHangs(topo);
    for (int i = 0; i < 10; ++i) {
        std::vector<HlsError> again = hls::detectHangs(topo);
        ASSERT_EQ(again.size(), first.size());
        for (size_t k = 0; k < first.size(); ++k)
            EXPECT_EQ(again[k].message, first[k].message);
    }
}

TEST(StreamHangs, SkewedJoinNeedsFullTokenBuffer)
{
    const subjects::Subject &s = streaming("S3");
    for (long depth : {1L, 2L, 16L, 63L}) {
        DataflowTopology topo = topologyOf(s.source, s.kernel, depth);
        EXPECT_FALSE(hls::detectHangs(topo).empty()) << depth;
    }
    DataflowTopology deep = topologyOf(s.source, s.kernel, 64);
    EXPECT_TRUE(hls::detectHangs(deep).empty());
}

TEST(StreamHangs, ClassifierRoutesStreamingVocabulary)
{
    EXPECT_EQ(repair::classifyMessage(
                  hls::diag::streamDeadlock("c", 64, 2, {}).message),
              ErrorCategory::StreamingDataflow);
    EXPECT_EQ(repair::classifyMessage(
                  hls::diag::streamStarvation("c", {}).message),
              ErrorCategory::StreamingDataflow);
    EXPECT_EQ(repair::classifyMessage(
                  hls::diag::unserializedDataflow("buf", {}).message),
              ErrorCategory::StreamingDataflow);
    // A bare "stream" keeps routing to the struct rule (P8's
    // stream_static chain must not be hijacked).
    EXPECT_EQ(repair::classifyMessage(
                  "the stream member needs a static declaration"),
              ErrorCategory::StructAndUnion);
}

// --- stall accounting ------------------------------------------------------

TEST(StreamStalls, DeeperFifosNeverIncreaseStallCycles)
{
    for (const subjects::Subject &s : subjects::streamingSubjects()) {
        uint64_t previous = ~uint64_t(0);
        for (long depth = 1; depth <= 1024; depth *= 2) {
            DataflowTopology topo =
                topologyOf(s.source, s.kernel, depth);
            uint64_t stalls = hls::fifoStallCycles(topo);
            EXPECT_LE(stalls, previous)
                << s.id << " at depth " << depth;
            previous = stalls;
        }
    }
}

TEST(StreamStalls, RepairRemovesButterflyBackpressure)
{
    // The S4 expert port prices to zero stall cycles; the broken
    // original pays (2048 - depth) * (ii_r - ii_w).
    const subjects::Subject &s = streaming("S4");
    DataflowTopology broken = topologyOf(s.source, s.kernel, 2);
    EXPECT_EQ(hls::fifoStallCycles(broken), uint64_t(2046) * 3);
    DataflowTopology fixed = topologyOf(s.manual_source, s.kernel, 2);
    EXPECT_EQ(hls::fifoStallCycles(fixed), 0u);
}

TEST(StreamStalls, FpgaModelChargesStallsAndCreditsOverlap)
{
    const subjects::Subject &s = streaming("S4");
    auto tu = cir::parse(s.source);
    HlsConfig config = HlsConfig::forTop(s.kernel);
    std::vector<interp::KernelArg> args = s.existing_tests.at(0);
    hls::FpgaRunResult r =
        hls::simulateFpga(*tu, config, s.kernel, args);
    ASSERT_TRUE(r.run.ok) << r.run.trap;
    EXPECT_EQ(r.stream_processes, 2);
    EXPECT_GT(r.fifo_stall_cycles, 0u);

    auto fixed_tu = cir::parse(s.manual_source);
    hls::FpgaRunResult fixed =
        hls::simulateFpga(*fixed_tu, config, s.kernel, args);
    ASSERT_TRUE(fixed.run.ok) << fixed.run.trap;
    EXPECT_EQ(fixed.fifo_stall_cycles, 0u);
    EXPECT_LT(fixed.fpga_cycles, r.fpga_cycles)
        << "removing backpressure must not slow the design down";
}

// --- end-to-end repair -----------------------------------------------------

/** Every knob pinned, mirroring the golden-test discipline. */
core::HeteroGenOptions
streamOptions(const subjects::Subject &s)
{
    core::HeteroGenOptions opts;
    opts.kernel = s.kernel;
    opts.narrow_bitwidths = false;
    opts.fuzz.host_function = s.host;
    opts.fuzz.rng_seed = s.fuzz_seed;
    opts.fuzz.max_executions = 60;
    opts.fuzz.mutations_per_input = 6;
    opts.fuzz.min_suite_size = 8;
    opts.fuzz.max_steps_per_run = 400000;
    opts.fuzz.plateau_minutes = 30.0;
    opts.fuzz.budget_minutes = 120.0;
    opts.fuzz.threads = 1;
    opts.search.rng_seed = 7;
    opts.search.difftest_sample = 8;
    opts.search.budget_minutes = 400.0;
    opts.search.max_iterations = 2000;
    opts.search.use_style_checker = true;
    opts.search.use_dependence = true;
    opts.search.use_memo = true;
    opts.search.difftest_sim_workers = 1;
    opts.search.eval_threads = 1;
    opts.search.proposer = "template";
    return opts;
}

/** Relative-order containment: needles appear in haystack order. */
bool
appliedInOrder(const std::vector<std::string> &applied,
               const std::vector<std::string> &expected)
{
    size_t at = 0;
    for (const std::string &name : applied) {
        if (at < expected.size() && name == expected[at])
            ++at;
    }
    return at == expected.size();
}

TEST(StreamRepair, EverySubjectRepairsViaStreamTemplates)
{
    struct Case
    {
        const char *id;
        std::vector<std::string> expected_edits;
    };
    const std::vector<Case> cases = {
        {"S1", {"streamify($a1:arr)"}},
        {"S2", {"streamify($a1:arr)"}},
        {"S3", {"stream_depth($c1:chan)"}},
        {"S4", {"stream_depth($c1:chan)", "bank_partition($a1:arr)"}},
    };
    for (const Case &c : cases) {
        const subjects::Subject &s = streaming(c.id);
        core::HeteroGen engine(s.source);
        auto report = engine.run(streamOptions(s));
        EXPECT_TRUE(report.ok())
            << c.id << ": hls_compatible=" << report.search.hls_compatible
            << " behavior_preserved=" << report.search.behavior_preserved;
        EXPECT_DOUBLE_EQ(report.search.pass_ratio, 1.0) << c.id;
        EXPECT_TRUE(appliedInOrder(report.search.applied_order,
                                   c.expected_edits))
            << c.id << ": applied "
            << join(report.search.applied_order, ", ");
    }
}

TEST(StreamRepair, StreamifiedChainDrainsThroughFifos)
{
    const subjects::Subject &s = streaming("S1");
    core::HeteroGen engine(s.source);
    auto report = engine.run(streamOptions(s));
    ASSERT_TRUE(report.ok());
    // The scratch array is gone: both hops of the chain are fifos now.
    EXPECT_TRUE(contains(report.hls_source, "buf.write("));
    EXPECT_TRUE(contains(report.hls_source, "buf.read()"));
    EXPECT_FALSE(contains(report.hls_source, "int buf[64]"));
}

TEST(StreamRepair, ButterflyCapsDepthThenPartitions)
{
    const subjects::Subject &s = streaming("S4");
    core::HeteroGen engine(s.source);
    auto report = engine.run(streamOptions(s));
    ASSERT_TRUE(report.ok());
    // Depth sizing capped at the legal maximum...
    EXPECT_TRUE(contains(report.hls_source, "depth=1024"));
    // ...and partitioning closed the remaining backlog.
    EXPECT_TRUE(contains(report.hls_source, "factor=4"));
}

TEST(StreamRepair, ReportsAreThreadCountAndSeedStable)
{
    const subjects::Subject &s = streaming("S3");
    for (uint64_t seed : {uint64_t(203), uint64_t(9001)}) {
        std::string baseline_source;
        std::vector<std::string> baseline_actions;
        double baseline_minutes = -1;
        for (int threads : {1, 2, 8}) {
            core::HeteroGenOptions opts = streamOptions(s);
            opts.fuzz.rng_seed = seed;
            opts.search.eval_threads = threads;
            core::HeteroGen engine(s.source);
            auto report = engine.run(opts);
            ASSERT_TRUE(report.ok()) << "threads=" << threads;
            std::vector<std::string> actions;
            for (const auto &step : report.search.trace)
                actions.push_back(step.action);
            if (baseline_minutes < 0) {
                baseline_source = report.hls_source;
                baseline_actions = actions;
                baseline_minutes = report.total_minutes;
                continue;
            }
            EXPECT_EQ(report.hls_source, baseline_source)
                << "threads=" << threads << " seed=" << seed;
            EXPECT_EQ(actions, baseline_actions)
                << "threads=" << threads << " seed=" << seed;
            EXPECT_DOUBLE_EQ(report.total_minutes, baseline_minutes)
                << "threads=" << threads << " seed=" << seed;
        }
    }
}

} // namespace
} // namespace heterogen
