/** @file Validation of the P1-P10 subjects and the forum corpus. */

#include <gtest/gtest.h>

#include <map>

#include "cir/parser.h"
#include "cir/printer.h"
#include "cir/sema.h"
#include "hls/synth_check.h"
#include "interp/interp.h"
#include "repair/localizer.h"
#include "subjects/forum_corpus.h"
#include "subjects/subjects.h"
#include "support/strings.h"

namespace heterogen::subjects {
namespace {

using hls::ErrorCategory;
using interp::KernelArg;

class SubjectTest : public ::testing::TestWithParam<const char *>
{
  protected:
    const Subject &subject() const { return subjectById(GetParam()); }
};

TEST_P(SubjectTest, OriginalParsesAndAnalyzes)
{
    const Subject &s = subject();
    auto tu = cir::parse(s.source);
    auto sema = cir::analyze(*tu);
    EXPECT_TRUE(sema.ok())
        << s.id << ": " << (sema.errors.empty()
                                ? ""
                                : sema.errors.front().message);
    EXPECT_NE(tu->findFunction(s.kernel), nullptr);
    if (!s.host.empty())
        EXPECT_NE(tu->findFunction(s.host), nullptr);
}

TEST_P(SubjectTest, OriginalHasHlsErrors)
{
    const Subject &s = subject();
    auto tu = cir::parse(s.source);
    cir::analyzeOrDie(*tu);
    hls::HlsConfig config = hls::HlsConfig::forTop(
        s.initial_top.empty() ? s.kernel : s.initial_top);
    auto errors = hls::checkSynthesizability(*tu, config);
    EXPECT_FALSE(errors.empty())
        << s.id << " must be HLS-incompatible before repair";
}

TEST_P(SubjectTest, HostRunsCleanly)
{
    const Subject &s = subject();
    if (s.host.empty())
        GTEST_SKIP();
    auto tu = cir::parse(s.source);
    cir::analyzeOrDie(*tu);
    auto r = interp::runProgram(*tu, s.host, {});
    EXPECT_TRUE(r.ok) << s.id << ": " << r.trap;
}

TEST_P(SubjectTest, ManualPortIsHlsClean)
{
    const Subject &s = subject();
    auto tu = cir::parse(s.manual_source);
    auto sema = cir::analyze(*tu);
    ASSERT_TRUE(sema.ok())
        << s.id << ": " << (sema.errors.empty()
                                ? ""
                                : sema.errors.front().message);
    hls::HlsConfig config = hls::HlsConfig::forTop(s.kernel);
    auto errors = hls::checkSynthesizability(*tu, config);
    EXPECT_TRUE(errors.empty())
        << s.id << " manual port: " << errors.front().str();
}

TEST_P(SubjectTest, ExistingTestsRunOnOriginal)
{
    const Subject &s = subject();
    if (s.existing_tests.empty())
        GTEST_SKIP();
    auto tu = cir::parse(s.source);
    cir::analyzeOrDie(*tu);
    for (const auto &args : s.existing_tests) {
        auto r = interp::runProgram(*tu, s.kernel, args);
        EXPECT_TRUE(r.ok) << s.id << ": " << r.trap;
    }
}

INSTANTIATE_TEST_SUITE_P(AllSubjects, SubjectTest,
                         ::testing::Values("P1", "P2", "P3", "P4", "P5",
                                           "P6", "P7", "P8", "P9",
                                           "P10"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(Subjects, TenSubjectsRegistered)
{
    EXPECT_EQ(allSubjects().size(), 10u);
    EXPECT_THROW(subjectById("P11"), FatalError);
}

TEST(Subjects, ErrorCategoryMixMatchesDesign)
{
    // Which categories each subject's initial errors cover; this pins
    // the suite to the paper's error-type design (e.g. P3/P8 are purely
    // dynamic-data so HeteroRefactor can handle exactly those two).
    std::map<std::string, std::set<ErrorCategory>> expected = {
        {"P1", {ErrorCategory::UnsupportedDataTypes}},
        {"P2", {ErrorCategory::UnsupportedDataTypes}},
        {"P3", {ErrorCategory::DynamicDataStructures,
                ErrorCategory::UnsupportedDataTypes}},
        {"P5", {ErrorCategory::DynamicDataStructures,
                ErrorCategory::UnsupportedDataTypes}},
        {"P6", {ErrorCategory::UnsupportedDataTypes}},
        {"P8", {ErrorCategory::DynamicDataStructures,
                ErrorCategory::UnsupportedDataTypes}},
        {"P10", {ErrorCategory::StructAndUnion}},
    };
    for (const auto &[id, categories] : expected) {
        const Subject &s = subjectById(id);
        auto tu = cir::parse(s.source);
        cir::analyzeOrDie(*tu);
        auto errors = hls::checkSynthesizability(
            *tu, hls::HlsConfig::forTop(s.kernel));
        std::set<ErrorCategory> seen;
        for (const auto &e : errors)
            seen.insert(e.category);
        EXPECT_EQ(seen, categories) << id;
    }
    // P9 additionally has struct and top-function errors.
    {
        const Subject &s = subjectById("P9");
        auto tu = cir::parse(s.source);
        cir::analyzeOrDie(*tu);
        auto errors = hls::checkSynthesizability(
            *tu, hls::HlsConfig::forTop(s.initial_top));
        std::set<ErrorCategory> seen;
        for (const auto &e : errors)
            seen.insert(e.category);
        EXPECT_TRUE(seen.count(ErrorCategory::StructAndUnion)) << "P9";
        EXPECT_TRUE(seen.count(ErrorCategory::TopFunction)) << "P9";
    }
}

TEST(Subjects, PointerErrorsAreNotPureForP3P8Blockers)
{
    // P3 and P8's non-dynamic errors must all be pointer errors, which
    // the HeteroRefactor edit whitelist can also fix.
    for (const char *id : {"P3", "P8"}) {
        const Subject &s = subjectById(id);
        auto tu = cir::parse(s.source);
        cir::analyzeOrDie(*tu);
        auto errors = hls::checkSynthesizability(
            *tu, hls::HlsConfig::forTop(s.kernel));
        for (const auto &e : errors) {
            if (e.category == ErrorCategory::UnsupportedDataTypes) {
                EXPECT_NE(e.message.find("pointer"), std::string::npos)
                    << id << ": " << e.message;
            }
        }
    }
}

TEST(Subjects, ManualPortsPreserveBehaviorOnHostInputs)
{
    // Representative in-range inputs per subject; manual ports must
    // match the original's input-output behaviour on them.
    struct Case
    {
        const char *id;
        std::vector<KernelArg> args;
    };
    std::vector<Case> cases;
    cases.push_back({"P1",
                     {KernelArg::ofInt(120), KernelArg::ofInt(64),
                      KernelArg::ofInt(32)}});
    {
        std::vector<double> xs(64);
        for (int i = 0; i < 64; ++i)
            xs[i] = i * 0.5 - 1.0;
        cases.push_back({"P2", {KernelArg::ofFloats(xs),
                                KernelArg::ofInt(64)}});
    }
    {
        std::vector<long> data(256);
        for (int i = 0; i < 256; ++i)
            data[i] = (i * 7919 + 13) % 512 - 256;
        cases.push_back(
            {"P3", {KernelArg::ofInts(data), KernelArg::ofInt(100)}});
    }
    {
        std::vector<long> img(256);
        for (int i = 0; i < 256; ++i)
            img[i] = (i * 31 + 7) % 256;
        cases.push_back({"P4",
                         {KernelArg::ofInts(img),
                          KernelArg::ofInts(std::vector<long>(256, 0)),
                          KernelArg::ofInt(16), KernelArg::ofInt(16),
                          KernelArg::ofInt(128)}});
    }
    {
        std::vector<long> vals(64);
        for (int i = 0; i < 64; ++i)
            vals[i] = (i * 53 + 11) % 97;
        cases.push_back(
            {"P5", {KernelArg::ofInts(vals), KernelArg::ofInt(64)}});
    }
    {
        std::vector<long> a(16), b(16);
        for (int i = 0; i < 16; ++i) {
            a[i] = i - 8;
            b[i] = (i * 3) % 7;
        }
        cases.push_back({"P6",
                         {KernelArg::ofInts(a), KernelArg::ofInts(b),
                          KernelArg::ofInts(std::vector<long>(16, 0))}});
    }
    {
        std::vector<long> data(32);
        for (int i = 0; i < 32; ++i)
            data[i] = (97 - i * 13) % 41;
        cases.push_back({"P7",
                         {KernelArg::ofInts(data), KernelArg::ofInt(32),
                          KernelArg::ofInts({0, 0, 0, 0})}});
    }
    {
        std::vector<long> data(64);
        for (int i = 0; i < 64; ++i)
            data[i] = (i * 29 + 3) % 50;
        cases.push_back({"P8",
                         {KernelArg::ofInts(data), KernelArg::ofInt(48),
                          KernelArg::ofInts({0, 0, 0, 0})}});
    }
    {
        std::vector<long> img(256);
        for (int i = 0; i < 256; ++i)
            img[i] = (i * i + 3 * i) % 255;
        cases.push_back(
            {"P9",
             {KernelArg::ofInts(img), KernelArg::ofInt(16),
              KernelArg::ofInt(16), KernelArg::ofInts({1, 2, 3, 4}),
              KernelArg::ofInts({}),
              KernelArg::ofInts(std::vector<long>(8, 0))}});
    }
    {
        std::vector<long> glyph(16);
        for (int p = 0; p < 16; ++p)
            glyph[p] = ((5 * 131 + p * 17) % 32) - 16;
        cases.push_back({"P10", {KernelArg::ofInts(glyph)}});
    }
    for (const Case &c : cases) {
        const Subject &s = subjectById(c.id);
        auto orig = cir::parse(s.source);
        cir::analyzeOrDie(*orig);
        auto manual = cir::parse(s.manual_source);
        cir::analyzeOrDie(*manual);
        auto a = interp::runProgram(*orig, s.kernel, c.args);
        auto b = interp::runProgram(*manual, s.kernel, c.args);
        ASSERT_TRUE(a.ok) << c.id << " original: " << a.trap;
        ASSERT_TRUE(b.ok) << c.id << " manual: " << b.trap;
        EXPECT_TRUE(a.sameBehavior(b)) << c.id;
    }
}

TEST(Subjects, OriginalSizesRoughlyMatchPaper)
{
    // Table 5 origin LOC: within a loose factor so the suite stays
    // comparable in shape (biggest = P9, smallest = P1/P6).
    std::map<std::string, int> paper = {
        {"P1", 15}, {"P2", 24},  {"P3", 121}, {"P4", 285}, {"P5", 85},
        {"P6", 19}, {"P7", 50},  {"P8", 131}, {"P9", 465}, {"P10", 117},
    };
    int loc_p1 = 0, loc_p9 = 0;
    for (const Subject &s : allSubjects()) {
        auto tu = cir::parse(s.source);
        int loc = countLines(cir::print(*tu));
        EXPECT_GT(loc, paper[s.id] / 4) << s.id;
        EXPECT_LT(loc, paper[s.id] * 4) << s.id;
        if (s.id == "P1")
            loc_p1 = loc;
        if (s.id == "P9")
            loc_p9 = loc;
    }
    EXPECT_LT(loc_p1, loc_p9) << "size ordering preserved";
}

// --- forum corpus -----------------------------------------------------------------

TEST(ForumCorpus, GeneratesRequestedCount)
{
    auto posts = generateForumCorpus(1000);
    EXPECT_EQ(posts.size(), 1000u);
}

TEST(ForumCorpus, GroundTruthMatchesPaperShares)
{
    auto posts = generateForumCorpus(1000);
    std::map<ErrorCategory, int> counts;
    for (const auto &p : posts)
        counts[p.ground_truth] += 1;
    for (ErrorCategory c : hls::allCategories()) {
        double share = double(counts[c]) / posts.size();
        EXPECT_NEAR(share, paperCategoryShare(c), 0.01)
            << hls::categoryName(c);
    }
}

TEST(ForumCorpus, ClassifierAgreesWithGroundTruth)
{
    auto posts = generateForumCorpus(1000);
    int agree = 0;
    for (const auto &p : posts) {
        auto category = repair::classifyMessage(p.message);
        if (category && *category == p.ground_truth)
            agree += 1;
    }
    EXPECT_GT(double(agree) / posts.size(), 0.9)
        << "keyword classifier should recover most categories";
}

TEST(ForumCorpus, Deterministic)
{
    auto a = generateForumCorpus(200, 5);
    auto b = generateForumCorpus(200, 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].message, b[i].message);
        EXPECT_EQ(a[i].ground_truth, b[i].ground_truth);
    }
}

} // namespace
} // namespace heterogen::subjects
