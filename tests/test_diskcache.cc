/** @file Persistent verdict-cache tests: DiskCache crash safety,
 * sharding, versioned invalidation and eviction; VerdictStore exact
 * round-trips and the never-persist-tool-failures rule; cold/warm
 * bit-identity of whole pipeline runs; shared-cache conversion-service
 * determinism at any host thread count (the tsan CI job runs these);
 * and the cache_dir validation surface. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/heterogen.h"
#include "repair/store.h"
#include "service/service.h"
#include "subjects/subjects.h"
#include "support/diagnostics.h"
#include "support/diskcache.h"
#include "support/run_context.h"
#include "support/strings.h"
#include "support/trace.h"

namespace heterogen {
namespace {

namespace fs = std::filesystem;

/** A fresh, empty cache directory under the system temp root. */
std::string
freshDir(const std::string &tag)
{
    static std::atomic<int> seq{0};
    fs::path p = fs::temp_directory_path() /
                 ("hg-cache-" + tag + "-" + std::to_string(::getpid()) +
                  "-" + std::to_string(seq.fetch_add(1)));
    std::error_code ec;
    fs::remove_all(p, ec);
    return p.string();
}

std::vector<std::string>
shardFiles(const std::string &dir)
{
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir, ec)) {
        std::string name = e.path().filename().string();
        if (startsWith(name, "shard-"))
            files.push_back(e.path().string());
    }
    return files;
}

// --- DiskCache: round trips and snapshot visibility ----------------------

TEST(DiskCache, BufferedWritesInvisibleUntilFlushThenServed)
{
    std::string dir = freshDir("vis");
    DiskCacheOptions o;
    o.dir = dir;
    DiskCache cache(o);
    ASSERT_TRUE(cache.enabled());

    cache.put("k1", "v1");
    // Snapshot visibility: the buffered write is never served.
    EXPECT_FALSE(cache.find("k1").has_value());
    EXPECT_EQ(cache.pendingWrites(), 1u);
    EXPECT_EQ(cache.stats().writes, 1);

    ASSERT_TRUE(cache.flush());
    // The flush promoted the entry into the snapshot.
    auto hit = cache.find("k1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "v1");
    EXPECT_EQ(cache.pendingWrites(), 0u);
}

TEST(DiskCache, RoundTripsAcrossReopen)
{
    std::string dir = freshDir("reopen");
    DiskCacheOptions o;
    o.dir = dir;
    {
        DiskCache cache(o);
        cache.put("key-a", "value-a");
        cache.put("key-b", "value with\ttab and\nnewline and \\slash");
        ASSERT_TRUE(cache.flush());
    }
    DiskCache cache(o);
    EXPECT_EQ(cache.stats().loaded, 2);
    EXPECT_EQ(cache.snapshotSize(), 2u);
    auto a = cache.find("key-a");
    auto b = cache.find("key-b");
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, "value-a");
    EXPECT_EQ(*b, "value with\ttab and\nnewline and \\slash");
    EXPECT_FALSE(cache.find("key-c").has_value());
    EXPECT_EQ(cache.stats().hits, 2);
    EXPECT_EQ(cache.stats().misses, 1);
}

TEST(DiskCache, KeysFanOutAcrossShardFiles)
{
    std::string dir = freshDir("fanout");
    DiskCacheOptions o;
    o.dir = dir;
    o.shards = 16;
    DiskCache cache(o);
    for (int i = 0; i < 64; ++i)
        cache.put("key-" + std::to_string(i), "v");
    ASSERT_TRUE(cache.flush());
    // 64 hashed keys must spread over several of the 16 shard files.
    EXPECT_GT(shardFiles(dir).size(), 4u);
    // Each key's shard assignment is stable and within range.
    std::string h = DiskCache::keyHash("key-0");
    EXPECT_EQ(h.size(), 32u);
    EXPECT_TRUE(startsWith(DiskCache::shardName(h, 16), "shard-"));
}

TEST(DiskCache, DuplicateInstanceSharingADirConverges)
{
    std::string dir = freshDir("share");
    DiskCacheOptions o;
    o.dir = dir;
    DiskCache a(o);
    DiskCache b(o);
    a.put("from-a", "1");
    b.put("from-b", "2");
    ASSERT_TRUE(a.flush());
    ASSERT_TRUE(b.flush());
    DiskCache fresh(o);
    EXPECT_TRUE(fresh.find("from-a").has_value());
    EXPECT_TRUE(fresh.find("from-b").has_value());
}

// --- DiskCache: crash safety ---------------------------------------------

TEST(DiskCache, CorruptAndTruncatedLinesAreSkippedAsMisses)
{
    std::string dir = freshDir("corrupt");
    DiskCacheOptions o;
    o.dir = dir;
    o.shards = 1;
    {
        DiskCache cache(o);
        cache.put("good", "value");
        ASSERT_TRUE(cache.flush());
    }
    // Damage the shard: garbage, a checksum-broken copy and a torn
    // (truncated) record appended after the valid line.
    std::string shard = shardFiles(dir).at(0);
    std::string valid;
    {
        std::ifstream in(shard);
        std::getline(in, valid);
    }
    {
        std::ofstream out(shard, std::ios::app);
        out << "complete garbage, not a record\n";
        std::string broken = valid;
        broken.back() = broken.back() == '0' ? '1' : '0';
        out << broken << "\n";
        out << valid.substr(0, valid.size() / 2) << "\n";
    }

    DiskCache cache(o);
    EXPECT_EQ(cache.stats().loaded, 1);
    EXPECT_EQ(cache.stats().invalid, 3);
    EXPECT_TRUE(cache.find("good").has_value());
    EXPECT_FALSE(cache.find("never-stored").has_value());

    // The next flush rewrites the shard without the garbage.
    ASSERT_TRUE(cache.flush());
    DiskCache clean(o);
    EXPECT_EQ(clean.stats().loaded, 1);
    EXPECT_EQ(clean.stats().invalid, 0);
}

TEST(DiskCache, StaleTempFilesAreIgnoredByTheLoader)
{
    std::string dir = freshDir("tmpfile");
    DiskCacheOptions o;
    o.dir = dir;
    {
        DiskCache cache(o);
        cache.put("k", "v");
        ASSERT_TRUE(cache.flush());
    }
    // A crash mid-publish leaves a temp file behind; it must never be
    // read as cache content.
    {
        std::ofstream out(fs::path(dir) / ".tmp-0-99999-0");
        out << "half-written partial shard\n";
    }
    DiskCache cache(o);
    EXPECT_EQ(cache.stats().loaded, 1);
    EXPECT_EQ(cache.stats().invalid, 0);
}

TEST(DiskCache, VetoedPublishKeepsOldShardAndReportsFailure)
{
    std::string dir = freshDir("veto");
    DiskCacheOptions o;
    o.dir = dir;
    o.shards = 1;
    {
        DiskCache cache(o);
        cache.put("old", "published");
        ASSERT_TRUE(cache.flush());
    }
    DiskCacheOptions failing = o;
    failing.pre_publish_hook = [](const std::string &) { return false; };
    {
        DiskCache cache(failing);
        cache.put("new", "never-published");
        EXPECT_FALSE(cache.flush());
        EXPECT_EQ(cache.stats().flush_failures, 1);
        // The buffer is retained for a retry...
        EXPECT_EQ(cache.pendingWrites(), 1u);
        // ...and the failed write was never promoted to the snapshot.
        EXPECT_FALSE(cache.find("new").has_value());
        // The destructor's flush fails too (hook still vetoes).
    }
    DiskCache fresh(o);
    EXPECT_TRUE(fresh.find("old").has_value());
    EXPECT_FALSE(fresh.find("new").has_value());
    // No temp litter either: the vetoed file was removed.
    for (const auto &e : fs::directory_iterator(dir))
        EXPECT_TRUE(startsWith(e.path().filename().string(), "shard-"));
}

// --- DiskCache: versioning and eviction ----------------------------------

TEST(DiskCache, VersionBumpInvalidatesEveryStaleEntry)
{
    std::string dir = freshDir("version");
    DiskCacheOptions v1;
    v1.dir = dir;
    v1.version = "sim-1";
    {
        DiskCache cache(v1);
        for (int i = 0; i < 10; ++i)
            cache.put("key-" + std::to_string(i), "v");
        ASSERT_TRUE(cache.flush());
    }
    DiskCacheOptions v2 = v1;
    v2.version = "sim-2";
    {
        DiskCache cache(v2);
        // Every old entry is stale: invisible and counted invalid.
        EXPECT_EQ(cache.stats().loaded, 0);
        EXPECT_EQ(cache.stats().invalid, 10);
        for (int i = 0; i < 10; ++i)
            EXPECT_FALSE(
                cache.find("key-" + std::to_string(i)).has_value());
        // Flushing physically removes the stale population.
        ASSERT_TRUE(cache.flush());
    }
    DiskCache old_again(v1);
    EXPECT_EQ(old_again.stats().loaded, 0);
    DiskCache new_again(v2);
    EXPECT_EQ(new_again.stats().invalid, 0);
}

TEST(DiskCache, ShardCapEvictsOldestGenerations)
{
    std::string dir = freshDir("evict");
    DiskCacheOptions o;
    o.dir = dir;
    o.shards = 1;
    o.max_entries_per_shard = 3;
    {
        DiskCache cache(o);
        for (int i = 0; i < 8; ++i)
            cache.put("key-" + std::to_string(i), "v");
        ASSERT_TRUE(cache.flush());
        EXPECT_EQ(cache.stats().evictions, 5);
    }
    DiskCache cache(o);
    EXPECT_EQ(cache.stats().loaded, 3);
    // The most recently written keys survived.
    EXPECT_TRUE(cache.find("key-7").has_value());
    EXPECT_FALSE(cache.find("key-0").has_value());
}

// --- DiskCache: concurrency (tsan hunts races here) ----------------------

TEST(DiskCacheConcurrency, ParallelFindPutFlushOnSharedDir)
{
    std::string dir = freshDir("hammer");
    DiskCacheOptions o;
    o.dir = dir;
    o.shards = 4;
    {
        DiskCache seedcache(o);
        for (int i = 0; i < 32; ++i)
            seedcache.put("seed-" + std::to_string(i), "v");
        ASSERT_TRUE(seedcache.flush());
    }
    DiskCache a(o);
    DiskCache b(o);
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            DiskCache &cache = t % 2 ? a : b;
            for (int i = 0; i < 200; ++i) {
                std::string key =
                    (i % 3 == 0)
                        ? "seed-" + std::to_string(i % 32)
                        : "t" + std::to_string(t) + "-" +
                              std::to_string(i);
                (void)cache.find(key);
                cache.put(key, "w");
                if (i % 64 == 63)
                    cache.flush();
            }
        });
    }
    for (auto &th : threads)
        th.join();
    ASSERT_TRUE(a.flush());
    ASSERT_TRUE(b.flush());
    DiskCache fresh(o);
    EXPECT_GE(fresh.snapshotSize(), 32u);
}

// --- VerdictStore: typed round trips -------------------------------------

TEST(VerdictStore, CompileVerdictRoundTripsBitExactly)
{
    std::string dir = freshDir("vs-compile");
    repair::VerdictStoreOptions o;
    o.dir = dir;
    hls::CompileResult r;
    r.ok = false;
    r.synth_minutes = 12.345678901234567;
    r.loc = 42;
    r.resources = {1000, 2000, 8, 1 << 20, 3};
    hls::HlsError e;
    e.code = "XFORM 202-876";
    e.message = "Synthesizability check failed: recursive call";
    e.category = hls::ErrorCategory::LoopParallelization;
    e.symbol = "acc";
    e.loc = {17, 4};
    r.errors.push_back(e);
    {
        repair::VerdictStore store(o);
        RunContext ctx;
        store.storeCompile(&ctx, "fp-1", r);
        EXPECT_TRUE(store.flush());
        EXPECT_EQ(ctx.trace().counterTotal("repair.diskcache.writes"),
                  1);
    }
    repair::VerdictStore store(o);
    RunContext ctx;
    auto hit = store.findCompile(&ctx, "fp-1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->ok, r.ok);
    EXPECT_FALSE(hit->tool_failure);
    EXPECT_EQ(hit->synth_minutes, r.synth_minutes); // bit-exact
    EXPECT_EQ(hit->loc, r.loc);
    EXPECT_EQ(hit->resources.luts, r.resources.luts);
    EXPECT_EQ(hit->resources.bram_bits, r.resources.bram_bits);
    EXPECT_EQ(hit->resources.memory_banks, r.resources.memory_banks);
    ASSERT_EQ(hit->errors.size(), 1u);
    EXPECT_EQ(hit->errors[0].code, e.code);
    EXPECT_EQ(hit->errors[0].message, e.message);
    EXPECT_EQ(hit->errors[0].category, e.category);
    EXPECT_EQ(hit->errors[0].symbol, e.symbol);
    EXPECT_EQ(hit->errors[0].loc.line, 17);
    EXPECT_EQ(hit->errors[0].loc.column, 4);
    EXPECT_EQ(ctx.trace().counterTotal("repair.diskcache.hits"), 1);
    EXPECT_FALSE(store.findCompile(&ctx, "fp-2").has_value());
    EXPECT_EQ(ctx.trace().counterTotal("repair.diskcache.misses"), 1);
    EXPECT_GT(store.stats().minutes_saved, 12.0);
}

TEST(VerdictStore, DiffTestAndStyleVerdictsRoundTrip)
{
    std::string dir = freshDir("vs-dt");
    repair::VerdictStoreOptions o;
    o.dir = dir;
    repair::DiffTestResult dt;
    dt.total = 16;
    dt.identical = 14;
    dt.failing = {3, 11};
    dt.cpu_millis = 1.0625;
    dt.fpga_millis = 0.4375;
    dt.sim_minutes = 2.7182818284590451;
    style::StyleReport sr;
    sr.check_minutes = 0.05;
    sr.issues.push_back({"pointer arithmetic is not synthesizable",
                         SourceLoc{9, 2}});
    {
        repair::VerdictStore store(o);
        store.storeDiffTest(nullptr, "dt-key", dt);
        store.storeStyle(nullptr, "int kernel() { return 0; }", sr);
        EXPECT_TRUE(store.flush());
    }
    repair::VerdictStore store(o);
    auto dhit = store.findDiffTest(nullptr, "dt-key");
    ASSERT_TRUE(dhit.has_value());
    EXPECT_EQ(dhit->total, 16);
    EXPECT_EQ(dhit->identical, 14);
    EXPECT_EQ(dhit->failing, (std::vector<int>{3, 11}));
    EXPECT_EQ(dhit->sim_minutes, dt.sim_minutes); // bit-exact
    EXPECT_FALSE(dhit->tool_failure);
    auto shit = store.findStyle(nullptr, "int kernel() { return 0; }");
    ASSERT_TRUE(shit.has_value());
    ASSERT_EQ(shit->issues.size(), 1u);
    EXPECT_EQ(shit->issues[0].message, sr.issues[0].message);
    EXPECT_EQ(shit->issues[0].loc.line, 9);
    EXPECT_EQ(shit->check_minutes, sr.check_minutes);
}

TEST(VerdictStore, ToolFailuresAreNeverPersisted)
{
    std::string dir = freshDir("vs-fail");
    repair::VerdictStoreOptions o;
    o.dir = dir;
    {
        repair::VerdictStore store(o);
        hls::CompileResult broken;
        broken.tool_failure = true;
        store.storeCompile(nullptr, "fp", broken);
        repair::DiffTestResult dt;
        dt.tool_failure = true;
        store.storeDiffTest(nullptr, "dt", dt);
        EXPECT_EQ(store.stats().writes, 0);
        EXPECT_EQ(store.diskStats().writes, 0);
        store.flush();
    }
    repair::VerdictStore store(o);
    EXPECT_EQ(store.snapshotSize(), 0u);
    EXPECT_FALSE(store.findCompile(nullptr, "fp").has_value());
    EXPECT_FALSE(store.findDiffTest(nullptr, "dt").has_value());
}

TEST(VerdictStore, ToolchainVersionBumpInvalidatesVerdicts)
{
    std::string dir = freshDir("vs-version");
    repair::VerdictStoreOptions current;
    current.dir = dir;
    {
        repair::VerdictStore store(current);
        hls::CompileResult ok;
        ok.ok = true;
        store.storeCompile(nullptr, "fp", ok);
        EXPECT_TRUE(store.flush());
        EXPECT_EQ(store.version(), repair::defaultToolchainVersion());
    }
    repair::VerdictStoreOptions bumped = current;
    bumped.version = "hgc1;sim=2023.1-sim2;style=sc-1";
    repair::VerdictStore store(bumped);
    EXPECT_EQ(store.diskStats().invalid, 1);
    EXPECT_EQ(store.snapshotSize(), 0u);
    EXPECT_FALSE(store.findCompile(nullptr, "fp").has_value());
}

// --- cache_dir validation surface ----------------------------------------

TEST(CacheDirValidation, DiagnosticsCarryTheCachePrefix)
{
    EXPECT_EQ(repair::cacheDirError(freshDir("probe")), "");
    std::string blank_err = repair::cacheDirError("   ");
    EXPECT_TRUE(startsWith(blank_err, "cache:")) << blank_err;

    // A path whose parent is a regular file cannot become a directory.
    std::string file = freshDir("as-file");
    {
        std::ofstream out(file);
        out << "x";
    }
    std::string err = repair::cacheDirError(file + "/nested");
    EXPECT_TRUE(startsWith(err, "cache:")) << err;
}

TEST(CacheDirValidation, ValidateOptionsRejectsUnusableCacheDir)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.cache_dir = "   ";
    try {
        core::validateOptions(opts);
        FAIL() << "blank cache_dir must be rejected";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("cache:"),
                  std::string::npos)
            << e.what();
    }
    opts.cache_dir.clear();
    opts.search.cache_dir = "  \t ";
    EXPECT_THROW(core::validateOptions(opts), FatalError);
    opts.search.cache_dir = freshDir("valid");
    core::validateOptions(opts); // now fine
}

TEST(CacheDirValidation, JobSpecRejectsUnusableCacheDirAtSubmit)
{
    service::ConversionService svc;
    service::JobSpec spec;
    spec.tenant = "t";
    spec.source = "int kernel(int x) { return x; }";
    spec.options.kernel = "kernel";
    spec.cache_dir = "   ";
    EXPECT_THROW(svc.submit(spec), FatalError);
    spec.cache_dir.clear();
    svc.submit(std::move(spec));
    svc.drain();
}

TEST(CacheDirValidation, EnvironmentKnobFeedsTheDefault)
{
    std::string dir = freshDir("env");
    ASSERT_EQ(setenv("HETEROGEN_CACHE_DIR", dir.c_str(), 1), 0);
    EXPECT_EQ(repair::defaultCacheDir(), dir);
    ASSERT_EQ(unsetenv("HETEROGEN_CACHE_DIR"), 0);
    EXPECT_EQ(repair::defaultCacheDir(), "");
}

// --- warm-start repair: end-to-end ---------------------------------------

/** A subject whose repair must backtrack (shared-buffer dataflow fix),
 * producing memo traffic and several full HLS invocations. */
const char *kBacktracking = R"(
    void bump(int data[16]) {
        for (int i = 0; i < 16; i++) { data[i] = data[i] + 1; }
    }
    int kernel(int seedv) {
        #pragma HLS dataflow
        int data[16];
        for (int i = 0; i < 16; i++) { data[i] = seedv + i; }
        bump(data);
        bump(data);
        int acc = 0;
        for (int i = 0; i < 16; i++) { acc += data[i]; }
        return acc;
    }
)";

core::HeteroGenOptions
cachedOptions(const std::string &cache_dir)
{
    core::HeteroGenOptions opts;
    opts.kernel = "kernel";
    opts.fuzz.max_executions = 400;
    opts.fuzz.min_suite_size = 12;
    opts.search.difftest_sample = 10;
    opts.search.cache_dir = cache_dir;
    return opts;
}

struct PipelineRun
{
    core::HeteroGenReport report;
    int64_t hls_compiles = 0;
    int64_t style_checks_run = 0;
    int64_t disk_hits = 0;
    int64_t disk_writes = 0;
};

PipelineRun
runCached(const core::HeteroGenOptions &opts,
          const std::string &src = kBacktracking)
{
    core::HeteroGen engine(src);
    RunContext ctx;
    PipelineRun run;
    run.report = engine.run(ctx, opts);
    run.hls_compiles = ctx.trace().counterTotal("hls.compiles");
    run.style_checks_run = ctx.trace().counterTotal("style.checks");
    run.disk_hits = ctx.trace().counterTotal("repair.diskcache.hits");
    run.disk_writes =
        ctx.trace().counterTotal("repair.diskcache.writes");
    return run;
}

/** Bit-identity of everything a cold and warm run must agree on. */
void
expectIdenticalReports(const core::HeteroGenReport &a,
                       const core::HeteroGenReport &b)
{
    EXPECT_EQ(a.hls_source, b.hls_source);
    EXPECT_EQ(a.search.hls_compatible, b.search.hls_compatible);
    EXPECT_EQ(a.search.behavior_preserved, b.search.behavior_preserved);
    EXPECT_EQ(a.search.pass_ratio, b.search.pass_ratio);
    EXPECT_EQ(a.search.sim_minutes, b.search.sim_minutes);
    EXPECT_EQ(a.search.minutes_to_success, b.search.minutes_to_success);
    EXPECT_EQ(a.search.iterations, b.search.iterations);
    EXPECT_EQ(a.search.full_hls_invocations,
              b.search.full_hls_invocations);
    EXPECT_EQ(a.search.style_checks, b.search.style_checks);
    EXPECT_EQ(a.search.style_rejections, b.search.style_rejections);
    EXPECT_EQ(a.search.applied_order, b.search.applied_order);
    EXPECT_EQ(a.search.memo.compile_hits, b.search.memo.compile_hits);
    EXPECT_EQ(a.search.memo.compile_misses,
              b.search.memo.compile_misses);
    EXPECT_EQ(a.search.memo.difftest_hits, b.search.memo.difftest_hits);
    EXPECT_EQ(a.search.memo.difftest_misses,
              b.search.memo.difftest_misses);
    EXPECT_EQ(a.total_minutes, b.total_minutes);
    ASSERT_EQ(a.search.trace.size(), b.search.trace.size());
    for (size_t i = 0; i < a.search.trace.size(); ++i) {
        EXPECT_EQ(a.search.trace[i].iteration,
                  b.search.trace[i].iteration);
        EXPECT_EQ(a.search.trace[i].action, b.search.trace[i].action);
        // Bit-equal simulated clock at every recorded step.
        EXPECT_EQ(a.search.trace[i].minutes_after,
                  b.search.trace[i].minutes_after);
    }
}

TEST(WarmStart, WarmRunsAreBitIdenticalAndSkipToolchainWork)
{
    std::string dir = freshDir("warm");
    PipelineRun cold = runCached(cachedOptions(dir));
    ASSERT_TRUE(cold.report.ok());
    EXPECT_GT(cold.disk_writes, 0);
    EXPECT_EQ(cold.disk_hits, 0);
    EXPECT_GT(cold.hls_compiles, 0);

    PipelineRun warm = runCached(cachedOptions(dir));
    PipelineRun warm2 = runCached(cachedOptions(dir));
    ASSERT_TRUE(warm.report.ok());
    expectIdenticalReports(cold.report, warm.report);
    expectIdenticalReports(warm.report, warm2.report);

    // The warm run answered compile verdicts from disk instead of
    // invoking the simulated toolchain.
    EXPECT_GT(warm.disk_hits, 0);
    EXPECT_LT(warm.hls_compiles, cold.hls_compiles);
    EXPECT_EQ(warm.hls_compiles, 0);
    EXPECT_EQ(warm2.hls_compiles, warm.hls_compiles);
    EXPECT_EQ(warm2.disk_hits, warm.disk_hits);
}

TEST(WarmStart, ToolchainVersionBumpRunsColdAgain)
{
    std::string dir = freshDir("warm-version");
    PipelineRun cold = runCached(cachedOptions(dir));
    ASSERT_TRUE(cold.report.ok());

    // How many entries the cold run actually persisted. (disk_writes
    // over-counts: a re-store of the same verdict after a revert is
    // counted, then deduplicated by the write buffer.)
    int64_t persisted = 0;
    {
        repair::VerdictStoreOptions probe;
        probe.dir = dir;
        persisted =
            static_cast<int64_t>(repair::VerdictStore(probe)
                                     .snapshotSize());
    }
    ASSERT_GT(persisted, 0);

    // Simulate a simulator upgrade: a store stamped with a different
    // toolchain version sees every persisted verdict as stale.
    repair::VerdictStoreOptions vopts;
    vopts.dir = dir;
    vopts.version = "hgc1;sim=2099.9-simX;style=sc-1";
    repair::VerdictStore bumped(vopts);
    EXPECT_EQ(bumped.snapshotSize(), 0u);
    EXPECT_EQ(bumped.diskStats().invalid, persisted);

    core::HeteroGenOptions opts = cachedOptions("");
    opts.search.verdict_store = &bumped;
    PipelineRun rerun = runCached(opts);
    expectIdenticalReports(cold.report, rerun.report);
    // No warm-start: every compile was fresh work again.
    EXPECT_EQ(rerun.hls_compiles, cold.hls_compiles);

    // Flushing the bumped store scrubs the stale population and
    // publishes the rerun's verdicts: reopening under the bumped
    // version sees a clean, warm cache.
    ASSERT_TRUE(bumped.flush());
    repair::VerdictStore again(vopts);
    EXPECT_EQ(again.diskStats().invalid, 0);
    EXPECT_GT(again.snapshotSize(), 0u);
}

TEST(WarmStart, ArmedFaultPlanBypassesTheDiskEntirely)
{
    std::string dir = freshDir("faults");
    core::HeteroGenOptions opts = cachedOptions(dir);
    opts.faults = FaultPlan::parse("hls.compile:1.0:transient", 11);
    opts.retry = RetryPolicy::none();
    core::HeteroGen engine(kBacktracking);
    RunContext ctx;
    auto report = engine.run(ctx, opts);
    EXPECT_TRUE(report.degraded());
    // No verdict — and in particular no tool failure — reached disk.
    EXPECT_EQ(ctx.trace().counterTotal("repair.diskcache.writes"), 0);
    EXPECT_EQ(ctx.trace().counterTotal("repair.diskcache.hits"), 0);
    EXPECT_TRUE(shardFiles(dir).empty());
}

// --- streaming subjects through the cache --------------------------------

TEST(VerdictStore, StreamingDeadlockVerdictRoundTripsBitExactly)
{
    std::string dir = freshDir("vs-stream");
    repair::VerdictStoreOptions o;
    o.dir = dir;
    hls::CompileResult r;
    r.ok = false;
    r.synth_minutes = 3.0000000000000004;
    hls::HlsError e;
    e.code = "XFORM 203-713";
    e.message = "deadlock detected in DATAFLOW region: fifo 'ns' of "
                "depth 2 requires depth 64 to avoid backpressure stall.";
    e.category = hls::ErrorCategory::StreamingDataflow;
    e.symbol = "ns";
    e.loc = {12, 5};
    r.errors.push_back(e);
    {
        repair::VerdictStore store(o);
        store.storeCompile(nullptr, "stream-fp", r);
        EXPECT_TRUE(store.flush());
    }
    repair::VerdictStore store(o);
    auto hit = store.findCompile(nullptr, "stream-fp");
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(hit->ok);
    EXPECT_EQ(hit->synth_minutes, r.synth_minutes); // bit-exact
    ASSERT_EQ(hit->errors.size(), 1u);
    EXPECT_EQ(hit->errors[0].code, e.code);
    EXPECT_EQ(hit->errors[0].message, e.message);
    EXPECT_EQ(hit->errors[0].category,
              hls::ErrorCategory::StreamingDataflow);
    EXPECT_EQ(hit->errors[0].symbol, "ns");
    EXPECT_EQ(hit->errors[0].loc.line, 12);
    EXPECT_EQ(hit->errors[0].loc.column, 5);
}

core::HeteroGenOptions
streamCachedOptions(const subjects::Subject &s, const std::string &dir)
{
    core::HeteroGenOptions opts;
    opts.kernel = s.kernel;
    opts.fuzz.host_function = s.host;
    opts.fuzz.rng_seed = s.fuzz_seed;
    opts.fuzz.max_executions = 60;
    opts.fuzz.mutations_per_input = 6;
    opts.fuzz.min_suite_size = 8;
    opts.fuzz.max_steps_per_run = 400000;
    opts.search.difftest_sample = 8;
    opts.search.cache_dir = dir;
    return opts;
}

TEST(WarmStart, StreamingSubjectWarmRunSkipsEveryCompile)
{
    // The stream-repair path (hang verdicts, stream_depth edits, the
    // stream_depth fingerprint component) must round-trip through the
    // persistent cache like every other verdict: a warm rerun of the
    // stencil subject answers everything from disk.
    const subjects::Subject &s = subjects::subjectById("S3");
    std::string dir = freshDir("warm-stream");
    PipelineRun cold = runCached(streamCachedOptions(s, dir), s.source);
    ASSERT_TRUE(cold.report.ok());
    EXPECT_GT(cold.hls_compiles, 0);
    EXPECT_GT(cold.disk_writes, 0);
    EXPECT_EQ(cold.disk_hits, 0);

    PipelineRun warm = runCached(streamCachedOptions(s, dir), s.source);
    ASSERT_TRUE(warm.report.ok());
    expectIdenticalReports(cold.report, warm.report);
    EXPECT_GT(warm.disk_hits, 0);
    EXPECT_EQ(warm.hls_compiles, 0);
}

// --- shared cache under the conversion service ---------------------------

const char *kScaleSource = R"(
int scale(int x, int y) {
    long double acc = 0.299L * x + 0.587L * y;
    long double bias = acc * 0.125L + 1.0L;
    return bias;
}
)";

core::HeteroGenOptions
fastServiceOptions(uint64_t seed)
{
    core::HeteroGenOptions opts;
    opts.kernel = "scale";
    opts.fuzz.rng_seed = seed;
    opts.fuzz.max_executions = 80;
    opts.fuzz.mutations_per_input = 4;
    opts.fuzz.min_suite_size = 8;
    opts.fuzz.budget_minutes = 30;
    opts.search.budget_minutes = 60;
    opts.search.max_iterations = 40;
    opts.search.difftest_sample = 4;
    opts.search.rng_seed = seed * 31 + 7;
    opts.engine = "bytecode";
    return opts;
}

struct ServiceRecord
{
    std::vector<std::string> sources;
    std::vector<std::string> traces;
    std::vector<double> minutes;
    int64_t hls_compiles = 0;
    int64_t disk_hits = 0;
};

ServiceRecord
drainWithCache(const std::string &dir, int host_threads)
{
    service::ServiceOptions so;
    so.slots = 2;
    so.host_threads = host_threads;
    so.eval_threads = 2;
    service::ConversionService svc(so);
    std::vector<int> ids;
    for (int i = 0; i < 4; ++i) {
        service::JobSpec spec;
        spec.tenant = i % 2 ? "alpha" : "beta";
        spec.arrival_minutes = 0.3 * i;
        spec.source = kScaleSource;
        // Two seed groups: jobs 0/2 and 1/3 are exact repeats, so even
        // the cold drain shares verdicts via the snapshot-plus-flush
        // discipline (never mid-drain).
        spec.options = fastServiceOptions(3 + (i % 2));
        spec.cache_dir = dir;
        ids.push_back(svc.submit(std::move(spec)));
    }
    svc.drain();
    ServiceRecord rec;
    for (int id : ids) {
        const service::JobOutcome &out = svc.collect(id);
        EXPECT_TRUE(out.has_report);
        rec.sources.push_back(out.report.hls_source);
        rec.traces.push_back(out.trace_json);
        rec.minutes.push_back(out.report.total_minutes);
        auto span = parseTraceJson(out.trace_json);
        rec.hls_compiles += span->counterTotal("hls.compiles");
        rec.disk_hits +=
            span->counterTotal("repair.diskcache.hits");
    }
    return rec;
}

TEST(ServiceCache, WarmDrainSkipsToolchainWorkWithIdenticalReports)
{
    std::string dir = freshDir("svc-warm");
    ServiceRecord cold = drainWithCache(dir, 2);
    EXPECT_EQ(cold.disk_hits, 0);
    EXPECT_GT(cold.hls_compiles, 0);

    ServiceRecord warm = drainWithCache(dir, 2);
    EXPECT_EQ(warm.sources, cold.sources);
    EXPECT_EQ(warm.minutes, cold.minutes);
    EXPECT_GT(warm.disk_hits, 0);
    EXPECT_LT(warm.hls_compiles, cold.hls_compiles);

    ServiceRecord warm2 = drainWithCache(dir, 2);
    EXPECT_EQ(warm2.sources, warm.sources);
    EXPECT_EQ(warm2.minutes, warm.minutes);
    EXPECT_EQ(warm2.traces, warm.traces);
}

TEST(ServiceCache, SharedCacheOutcomesAreHostThreadInvariant)
{
    // Cold drains on fresh directories: every thread count sees the
    // same (empty) snapshot, so everything must match bit for bit.
    ServiceRecord c1 = drainWithCache(freshDir("svc-c1"), 1);
    ServiceRecord c2 = drainWithCache(freshDir("svc-c2"), 2);
    ServiceRecord c8 = drainWithCache(freshDir("svc-c8"), 8);
    EXPECT_EQ(c1.sources, c2.sources);
    EXPECT_EQ(c1.traces, c2.traces);
    EXPECT_EQ(c1.minutes, c2.minutes);
    EXPECT_EQ(c1.sources, c8.sources);
    EXPECT_EQ(c1.traces, c8.traces);

    // Warm drains over one populated directory: the snapshot is the
    // same for every replay, so thread count still cannot show.
    std::string dir = freshDir("svc-warm-threads");
    drainWithCache(dir, 2);
    ServiceRecord w1 = drainWithCache(dir, 1);
    ServiceRecord w2 = drainWithCache(dir, 2);
    ServiceRecord w8 = drainWithCache(dir, 8);
    EXPECT_EQ(w1.sources, w2.sources);
    EXPECT_EQ(w1.traces, w2.traces);
    EXPECT_EQ(w1.minutes, w2.minutes);
    EXPECT_EQ(w1.sources, w8.sources);
    EXPECT_EQ(w1.traces, w8.traces);
}

} // namespace
} // namespace heterogen
