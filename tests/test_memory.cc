/** @file Unit tests for the interpreter's memory model and values. */

#include <gtest/gtest.h>

#include "interp/kernel_arg.h"
#include "interp/memory.h"
#include "interp/value.h"

namespace heterogen::interp {
namespace {

using cir::Type;

TEST(Value, KindsAndAccessors)
{
    Value i = Value::makeInt(42);
    EXPECT_TRUE(i.isInt());
    EXPECT_EQ(i.asInt(), 42);
    EXPECT_DOUBLE_EQ(i.asFloat(), 42.0);
    Value f = Value::makeFloat(2.5);
    EXPECT_TRUE(f.isFloat());
    EXPECT_DOUBLE_EQ(f.asFloat(), 2.5);
    Value p = Value::makePointer({3, 7});
    EXPECT_TRUE(p.isPointer());
    EXPECT_EQ(p.asPlace().block, 3);
    Value s = Value::makeStream(5);
    EXPECT_TRUE(s.isStream());
    EXPECT_EQ(s.streamId(), 5);
    EXPECT_TRUE(Value().isUnset());
}

TEST(Value, Truthiness)
{
    EXPECT_FALSE(Value::makeInt(0).truthy());
    EXPECT_TRUE(Value::makeInt(-1).truthy());
    EXPECT_FALSE(Value::makeFloat(0.0).truthy());
    EXPECT_TRUE(Value::makeFloat(0.1).truthy());
    EXPECT_FALSE(Value::makePointer({0, 0}).truthy());
    EXPECT_TRUE(Value::makePointer({2, 0}).truthy());
    EXPECT_FALSE(Value().truthy());
}

TEST(Value, CrossKindNumericEquality)
{
    EXPECT_TRUE(Value::makeInt(3).equals(Value::makeFloat(3.0)));
    EXPECT_FALSE(Value::makeInt(3).equals(Value::makeFloat(3.5)));
    EXPECT_FALSE(Value::makeInt(3).equals(Value::makePointer({1, 0})));
}

TEST(Value, WrapIntBehaviour)
{
    EXPECT_EQ(wrapInt(130, 7, false), 2);
    EXPECT_EQ(wrapInt(127, 7, false), 127);
    EXPECT_EQ(wrapInt(9, 4, true), -7);
    EXPECT_EQ(wrapInt(-1, 4, false), 15);
    EXPECT_EQ(wrapInt(123456789, 64, true), 123456789);
}

TEST(Value, QuantizeFloat)
{
    EXPECT_DOUBLE_EQ(quantizeFloat(1.0, 4), 1.0);
    EXPECT_DOUBLE_EQ(quantizeFloat(0.0, 4), 0.0);
    // 1 + 2^-10 rounds away below 10 mantissa bits.
    EXPECT_DOUBLE_EQ(quantizeFloat(1.0 + 1.0 / 1024.0, 4), 1.0);
    EXPECT_DOUBLE_EQ(quantizeFloat(1.0 + 1.0 / 1024.0, 52),
                     1.0 + 1.0 / 1024.0);
}

TEST(Value, CoercePointerFromInt)
{
    Value v = coerceToType(Value::makeInt(0),
                           Type::pointer(Type::intType()));
    ASSERT_TRUE(v.isPointer());
    EXPECT_TRUE(v.asPlace().isNull());
}

TEST(Memory, AllocateLoadStore)
{
    Memory mem;
    int32_t b = mem.allocate(4, Type::intType());
    mem.store({b, 0}, Value::makeInt(10));
    mem.store({b, 3}, Value::makeInt(13));
    EXPECT_EQ(mem.load({b, 0}).asInt(), 10);
    EXPECT_EQ(mem.load({b, 3}).asInt(), 13);
    EXPECT_EQ(mem.blockSize(b), 4);
}

TEST(Memory, StoreCoercesToCellType)
{
    Memory mem;
    int32_t b = mem.allocate(1, Type::fpgaUint(7));
    mem.store({b, 0}, Value::makeInt(130));
    EXPECT_EQ(mem.load({b, 0}).asInt(), 2);
}

TEST(Memory, PatternBlocksCoercePerField)
{
    Memory mem;
    int32_t b = mem.allocatePattern(
        2, Type::structType("S"),
        {Type::fpgaUint(4).get(), Type::intType().get()});
    EXPECT_EQ(mem.blockSize(b), 4);
    mem.store({b, 0}, Value::makeInt(20)); // field 0 of elem 0: wraps
    mem.store({b, 2}, Value::makeInt(20)); // field 0 of elem 1: wraps
    mem.store({b, 3}, Value::makeInt(20)); // field 1 of elem 1: intact
    EXPECT_EQ(mem.load({b, 0}).asInt(), 4);
    EXPECT_EQ(mem.load({b, 2}).asInt(), 4);
    EXPECT_EQ(mem.load({b, 3}).asInt(), 20);
}

TEST(Memory, TrapsOnBadAccess)
{
    Memory mem;
    int32_t b = mem.allocate(2, Type::intType());
    EXPECT_THROW(mem.load({b, 2}), Trap);
    EXPECT_THROW(mem.load({b, -1}), Trap);
    EXPECT_THROW(mem.load({0, 0}), Trap);
    EXPECT_THROW(mem.load({999, 0}), Trap);
}

TEST(Memory, FreeDiscipline)
{
    Memory mem;
    int32_t heap = mem.allocate(1, Type::intType(), true);
    int32_t stack = mem.allocate(1, Type::intType(), false);
    EXPECT_THROW(mem.release({stack, 0}), Trap);
    EXPECT_THROW(mem.release({heap, 1}), Trap) << "interior free";
    mem.release({heap, 0});
    EXPECT_THROW(mem.release({heap, 0}), Trap) << "double free";
    EXPECT_THROW(mem.load({heap, 0}), Trap) << "use after free";
    mem.release({0, 0}); // free(NULL) is a no-op
}

TEST(Memory, LiveCellsAccounting)
{
    Memory mem;
    size_t base = mem.liveCells();
    int32_t a = mem.allocate(10, Type::intType(), true);
    mem.allocate(5, Type::intType());
    EXPECT_EQ(mem.liveCells(), base + 15);
    mem.release({a, 0});
    EXPECT_EQ(mem.liveCells(), base + 5);
}

TEST(Memory, StreamsAreFifos)
{
    Memory mem;
    int32_t s = mem.createStream();
    EXPECT_TRUE(mem.streamEmpty(s));
    mem.streamWrite(s, Value::makeInt(1));
    mem.streamWrite(s, Value::makeInt(2));
    EXPECT_EQ(mem.streamSize(s), 2u);
    EXPECT_EQ(mem.streamRead(s).asInt(), 1);
    EXPECT_EQ(mem.streamRead(s).asInt(), 2);
    EXPECT_THROW(mem.streamRead(s), Trap);
    EXPECT_THROW(mem.streamRead(99), Trap);
}

TEST(KernelArg, FactoriesAndEquality)
{
    EXPECT_EQ(KernelArg::ofInt(3), KernelArg::ofInt(3));
    EXPECT_FALSE(KernelArg::ofInt(3) == KernelArg::ofInt(4));
    EXPECT_FALSE(KernelArg::ofInt(3) == KernelArg::ofFloat(3));
    auto a = KernelArg::ofInts({1, 2, 3});
    EXPECT_TRUE(a.isArray());
    EXPECT_EQ(a.size(), 3u);
    EXPECT_TRUE(KernelArg::ofInt(3).isScalar());
}

TEST(KernelArg, StringRendering)
{
    EXPECT_EQ(KernelArg::ofInt(-5).str(), "-5");
    EXPECT_EQ(KernelArg::ofInts({1, 2}).str(), "[1,2]");
    // Long arrays are elided.
    std::vector<long> big(20, 1);
    auto s = KernelArg::ofInts(big).str();
    EXPECT_NE(s.find("...(20)"), std::string::npos);
    EXPECT_EQ(argsToString({KernelArg::ofInt(1), KernelArg::ofInt(2)}),
              "(1, 2)");
}

} // namespace
} // namespace heterogen::interp
