/** @file Tests for AST traversal/rewriting utilities and clone fidelity. */

#include <gtest/gtest.h>

#include "cir/parser.h"
#include "cir/printer.h"
#include "cir/walk.h"

namespace heterogen::cir {
namespace {

const char *kProgram = R"(
    int g = 1;
    int f(int n) {
        int acc = 0;
        for (int i = 0; i < n; i++) {
            if (i % 2 == 0) {
                acc += i * g;
            } else {
                while (acc > 10) { acc /= 2; }
            }
        }
        return acc > 0 ? acc : -acc;
    }
)";

TEST(Walk, ForEachStmtVisitsAllStatements)
{
    auto tu = parse(kProgram);
    int stmts = 0;
    forEachStmt(*tu, [&](const Stmt &) { ++stmts; });
    // global decl, fn body block, acc decl, for, i decl, if, +=(expr),
    // while, /=(expr), return — plus nested blocks.
    EXPECT_GE(stmts, 10);
}

TEST(Walk, ForEachExprVisitsNestedExpressions)
{
    auto tu = parse(kProgram);
    int idents = 0;
    int binaries = 0;
    forEachExpr(*tu, [&](const Expr &e) {
        if (e.kind() == ExprKind::Ident)
            ++idents;
        if (e.kind() == ExprKind::Binary)
            ++binaries;
    });
    EXPECT_GE(idents, 8);
    EXPECT_GE(binaries, 5);
}

TEST(Walk, MutableVisitCanEditInPlace)
{
    auto tu = parse("int f() { return 1 + 2; }");
    forEachExpr(*tu, [](Expr &e) {
        if (e.kind() == ExprKind::IntLit)
            static_cast<IntLit &>(e).value *= 10;
    });
    EXPECT_EQ(print(*tu).find("10 + 20") != std::string::npos, true)
        << print(*tu);
}

TEST(Walk, RewriteExprsReplacesBottomUp)
{
    auto tu = parse("int f(int x) { return x + 1; }");
    rewriteExprs(*tu, [](Expr &e) -> ExprPtr {
        if (e.kind() == ExprKind::Ident &&
            static_cast<const Ident &>(e).name == "x") {
            return std::make_unique<IntLit>(7);
        }
        return nullptr;
    });
    EXPECT_NE(print(*tu).find("7 + 1"), std::string::npos)
        << print(*tu);
}

TEST(Walk, RewriteNestedArgumentsAndConditions)
{
    auto tu = parse(R"(
        int g(int v) { return v; }
        int f(int x) {
            if (g(x) > 0) { return g(g(x)); }
            return 0;
        }
    )");
    int rewrites = 0;
    rewriteExprs(*tu, [&](Expr &e) -> ExprPtr {
        if (e.kind() == ExprKind::Call &&
            static_cast<const Call &>(e).callee == "g") {
            ++rewrites;
        }
        return nullptr;
    });
    EXPECT_EQ(rewrites, 3);
}

TEST(Walk, CloneIsDeep)
{
    auto tu = parse(kProgram);
    auto copy = tu->clone();
    // Mutating the copy must not affect the original.
    forEachExpr(*copy, [](Expr &e) {
        if (e.kind() == ExprKind::IntLit)
            static_cast<IntLit &>(e).value = 999;
    });
    EXPECT_EQ(print(*tu).find("999"), std::string::npos);
    EXPECT_NE(print(*copy).find("999"), std::string::npos);
}

TEST(Walk, StructMethodsAreTraversed)
{
    auto tu = parse(R"(
        struct S {
            int x;
            int bump(int d) { x = x + d; return x; }
        };
        int f() { return S{ 1 }.bump(2); }
    )");
    bool saw_method_assign = false;
    forEachExpr(*tu, [&](const Expr &e) {
        if (e.kind() == ExprKind::Assign)
            saw_method_assign = true;
    });
    EXPECT_TRUE(saw_method_assign)
        << "TU walks must include struct method bodies";
}

} // namespace
} // namespace heterogen::cir
